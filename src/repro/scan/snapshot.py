"""In-memory columnar snapshot and the snapshot collection.

One :class:`Snapshot` is the result of a full LustreDU scan: a set of
columns, one row per live file-system entry, sorted by interned path id so
that week-over-week comparisons (intersection / new / deleted, §4.2.3) run
as merges over sorted integer arrays.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.fs.inode import S_IFDIR, S_IFMT
from repro.scan.paths import PathTable

#: Column names carried by every snapshot, in serialization order.
NUMERIC_COLUMNS = (
    "path_id",
    "ino",
    "mode",
    "uid",
    "gid",
    "atime",
    "mtime",
    "ctime",
    "stripe_count",
    "stripe_start",
)

COLUMN_DTYPES = {
    "path_id": np.int64,
    "ino": np.int64,
    "mode": np.uint32,
    "uid": np.int32,
    "gid": np.int32,
    "atime": np.int64,
    "mtime": np.int64,
    "ctime": np.int64,
    "stripe_count": np.int32,
    "stripe_start": np.int32,
}


@dataclass
class Snapshot:
    """One day's metadata snapshot in columnar form.

    All column arrays are the same length and row-aligned; rows are sorted by
    ``path_id``.  Paths themselves live in the collection-wide
    :class:`PathTable` referenced by ``paths``.
    """

    label: str
    timestamp: int
    paths: PathTable = field(repr=False)
    path_id: np.ndarray = field(repr=False)
    ino: np.ndarray = field(repr=False)
    mode: np.ndarray = field(repr=False)
    uid: np.ndarray = field(repr=False)
    gid: np.ndarray = field(repr=False)
    atime: np.ndarray = field(repr=False)
    mtime: np.ndarray = field(repr=False)
    ctime: np.ndarray = field(repr=False)
    stripe_count: np.ndarray = field(repr=False)
    stripe_start: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        n = self.path_id.size
        for name in NUMERIC_COLUMNS:
            col = getattr(self, name)
            if col.size != n:
                raise ValueError(f"column {name} has {col.size} rows, expected {n}")
        if n and not _is_sorted(self.path_id):
            self._sort_by_path_id()

    @classmethod
    def from_columns(
        cls, label: str, timestamp: int, paths: PathTable, columns: dict[str, np.ndarray]
    ) -> "Snapshot":
        cast = {
            name: np.ascontiguousarray(columns[name], dtype=COLUMN_DTYPES[name])
            for name in NUMERIC_COLUMNS
        }
        return cls(label=label, timestamp=timestamp, paths=paths, **cast)

    @classmethod
    def from_attached_columns(
        cls,
        label: str,
        timestamp: int,
        paths: PathTable,
        columns: dict[str, np.ndarray],
    ) -> "Snapshot":
        """Zero-copy attach of externally owned column buffers.

        Bypasses ``__init__`` validation: the buffers are the verbatim
        columns of an already-validated snapshot (the shared-memory
        exporter is the only producer), and they may be read-only views
        that the sort fallback could not reorder anyway.
        """
        snap = cls.__new__(cls)
        snap.label = label
        snap.timestamp = int(timestamp)
        snap.paths = paths
        for name in NUMERIC_COLUMNS:
            setattr(snap, name, columns[name])
        return snap

    def numeric_columns(self) -> dict[str, np.ndarray]:
        """name → column view, in serialization order (zero-copy export)."""
        return {name: getattr(self, name) for name in NUMERIC_COLUMNS}

    def column_nbytes(self) -> int:
        """Total bytes across the numeric columns (transport/stats sizing)."""
        return int(sum(getattr(self, name).nbytes for name in NUMERIC_COLUMNS))

    def _sort_by_path_id(self) -> None:
        order = np.argsort(self.path_id, kind="stable")
        for name in NUMERIC_COLUMNS:
            setattr(self, name, getattr(self, name)[order])

    # -- row views ---------------------------------------------------------

    def __len__(self) -> int:
        return int(self.path_id.size)

    @property
    def is_dir(self) -> np.ndarray:
        """Boolean mask of directory rows (derived from the mode column)."""
        return (self.mode.astype(np.uint32) & np.uint32(S_IFMT)) == np.uint32(S_IFDIR)

    @property
    def is_file(self) -> np.ndarray:
        return ~self.is_dir

    @property
    def n_files(self) -> int:
        return int(self.is_file.sum())

    @property
    def n_dirs(self) -> int:
        return int(self.is_dir.sum())

    def depth(self) -> np.ndarray:
        """Component depth per row (gathered from the path table)."""
        return self.paths.depths_of(self.path_id)

    def ext_id(self) -> np.ndarray:
        """Interned extension id per row."""
        return self.paths.ext_ids_of(self.path_id)

    def select(self, mask: np.ndarray) -> "Snapshot":
        """Row subset as a new snapshot (shares the path table)."""
        cols = {name: getattr(self, name)[mask] for name in NUMERIC_COLUMNS}
        return Snapshot(label=self.label, timestamp=self.timestamp, paths=self.paths, **cols)

    def path_strings(self) -> list[str]:
        """Materialized path strings, row-aligned (test/debug helper)."""
        table = self.paths.paths
        return [table[pid] for pid in self.path_id]

    # -- week-over-week set algebra (§4.2.3) ---------------------------------

    def intersect_ids(self, other: "Snapshot") -> np.ndarray:
        """Path ids present in both snapshots (both sides sorted + unique)."""
        return np.intersect1d(self.path_id, other.path_id, assume_unique=True)

    def only_ids(self, other: "Snapshot") -> np.ndarray:
        """Path ids present here but not in ``other``."""
        return np.setdiff1d(self.path_id, other.path_id, assume_unique=True)

    def rows_for(self, ids: np.ndarray) -> np.ndarray:
        """Row indices of the given (sorted) path ids."""
        idx = np.searchsorted(self.path_id, ids)
        if idx.size and (idx >= self.path_id.size).any():
            raise KeyError("some path ids are not present in this snapshot")
        if idx.size and (self.path_id[idx] != ids).any():
            raise KeyError("some path ids are not present in this snapshot")
        return idx


def _is_sorted(arr: np.ndarray) -> bool:
    return bool(np.all(arr[1:] >= arr[:-1]))


class SnapshotCollection:
    """Ordered series of weekly snapshots sharing one path table."""

    def __init__(self, paths: PathTable | None = None) -> None:
        self.paths = paths if paths is not None else PathTable()
        self._snapshots: list[Snapshot] = []

    def append(self, snapshot: Snapshot) -> None:
        if snapshot.paths is not self.paths:
            raise ValueError("snapshot was built against a different path table")
        if self._snapshots and snapshot.timestamp < self._snapshots[-1].timestamp:
            raise ValueError("snapshots must be appended in chronological order")
        self._snapshots.append(snapshot)

    def __len__(self) -> int:
        return len(self._snapshots)

    def __getitem__(self, idx: int) -> Snapshot:
        return self._snapshots[idx]

    def __iter__(self) -> Iterator[Snapshot]:
        return iter(self._snapshots)

    @property
    def labels(self) -> list[str]:
        return [s.label for s in self._snapshots]

    @property
    def timestamps(self) -> np.ndarray:
        return np.array([s.timestamp for s in self._snapshots], dtype=np.int64)

    def pairs(self) -> Iterator[tuple[Snapshot, Snapshot]]:
        """Adjacent (previous, current) snapshot pairs, for weekly diffs."""
        for prev, cur in zip(self._snapshots, self._snapshots[1:]):
            yield prev, cur

    def union_path_ids(self) -> np.ndarray:
        """Unique path ids ever observed ("accumulated unique entries")."""
        if not self._snapshots:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([s.path_id for s in self._snapshots]))

    def subset(self, indices: Sequence[int]) -> "SnapshotCollection":
        """A new collection referencing a subset of snapshots (shared table)."""
        out = SnapshotCollection(self.paths)
        for i in indices:
            out._snapshots.append(self._snapshots[i])
        return out
