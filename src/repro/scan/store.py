"""Out-of-core snapshot store: analyze archived snapshots without loading
the whole window into memory.

The paper's input was 8.5 TB of snapshots — far beyond RAM — which is why
the authors reached for Spark over Parquet files (§3).  The equivalent
here: archive snapshots to the columnar format once, then run the analyses
over a :class:`DiskSnapshotCollection`, which exposes the same interface as
the in-memory :class:`~repro.scan.snapshot.SnapshotCollection` but loads
snapshots lazily with a small LRU cache (adjacent-pair analyses like
Figure 13 need exactly two resident snapshots at a time).

Failure tolerance
-----------------
At production scale, truncated dumps and partial writes are facts of life.
The store therefore carries an explicit degradation policy:

* ``on_error="raise"`` (default) — the first corrupt file raises a typed
  :class:`~repro.scan.errors.CorruptSnapshotError`;
* ``on_error="skip"`` — corrupt files are excluded from the window and
  recorded in the collection's :class:`ArchiveHealthReport`;
* ``on_error="quarantine"`` — like ``skip``, but the file is also moved to
  a ``quarantine/`` subdirectory so the next run starts clean.

Construction validates every header (magic, lengths, header CRC, total-
length trailer — all cheap); ``verify="deep"`` additionally decodes every
column block up front, catching mid-file bit flips before an analysis
starts.  Transient ``OSError`` loads (the EIO-under-load case) are retried
with exponential backoff; corruption is never retried.
"""

from __future__ import annotations

import shutil
import threading
import time
import warnings
from collections import OrderedDict
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import NamedTuple

import numpy as np

from repro.scan.columnar import (
    open_columnar,
    read_columnar,
    read_columnar_header,
    read_columnar_paths,
)
from repro.scan.errors import CorruptSnapshotError
from repro.scan.paths import PathTable
from repro.scan.snapshot import NUMERIC_COLUMNS, Snapshot

#: Valid degradation policies for :class:`DiskSnapshotCollection`.
ON_ERROR_POLICIES = ("raise", "skip", "quarantine")

#: Subdirectory (under the archive) where quarantined files are moved.
QUARANTINE_DIRNAME = "quarantine"


class CacheInfo(NamedTuple):
    """LRU cache counters, ``functools.lru_cache``-style.

    ``bytes``/``bytes_limit`` extend the classic counters with byte
    accounting: ``bytes`` is the decoded size of the resident column
    blocks (what lazy loads have actually inflated, not the snapshots'
    full logical size), ``bytes_limit`` the eviction ceiling (``None``
    when the cache is bounded by entry count only).
    ``block_hits``/``block_misses`` count individual column-block touches
    on resident snapshots: a miss is a first-touch decode (disk read +
    inflate, or an mmap fault for v3 raw blocks), a hit is a reuse of an
    already-decoded block — e.g. a second kernel in the same fused wave
    touching ``atime`` after the first one paid for it.
    """

    hits: int
    misses: int
    maxsize: int
    currsize: int
    bytes: int = 0
    bytes_limit: int | None = None
    block_hits: int = 0
    block_misses: int = 0


@dataclass(frozen=True)
class SnapshotFault:
    """One bad snapshot file and what the policy did about it."""

    path: str
    reason: str
    offset: int | None
    action: str  # "skipped" | "quarantined"


@dataclass
class ArchiveHealthReport:
    """Structured record of what construction/verification found.

    Surfaced ``cache_info()``-style via
    :meth:`DiskSnapshotCollection.health_report` and printed by the CLI
    when an archive is degraded.
    """

    scanned: int = 0
    ok: int = 0
    faults: list[SnapshotFault] = field(default_factory=list)
    io_retries: int = 0
    quarantine_dir: str | None = None
    #: :class:`~repro.ingest.ingestor.IngestHealthReport` when the archive
    #: was built from foreign traces — one report then spans the whole
    #: trace → archive → analysis chain
    ingest: object | None = None

    @property
    def degraded(self) -> bool:
        if self.ingest is not None and self.ingest.degraded:
            return True
        return bool(self.faults)

    def summary(self) -> str:
        lines = [
            f"{self.ok}/{self.scanned} snapshots healthy, "
            f"{len(self.faults)} faulted, {self.io_retries} transient I/O retries"
        ]
        for f in self.faults:
            where = f" @{f.offset}" if f.offset is not None else ""
            lines.append(f"  {f.action}: {f.path}{where} — {f.reason}")
        if self.quarantine_dir and any(
            f.action == "quarantined" for f in self.faults
        ):
            lines.append(f"  quarantine dir: {self.quarantine_dir}")
        if self.ingest is not None:
            lines.append("ingest: " + self.ingest.summary())
        return "\n".join(lines)


class DiskSnapshotCollection:
    """Lazy, LRU-cached view over a directory of ``.rpq`` snapshot files.

    Interface-compatible with the analyses' use of ``SnapshotCollection``:
    ``len``, indexing, iteration, ``pairs()``, ``labels``, ``timestamps``,
    ``union_path_ids()``, ``subset()``, and a shared ``paths`` table (paths
    are interned on first load, so path ids stay consistent across
    snapshots within one session).

    Parameters
    ----------
    on_error:
        Degradation policy for corrupt files (see module docstring).
    verify:
        ``"header"`` (default) validates headers + trailers at
        construction; ``"deep"`` additionally decodes every column block
        (catches mid-file bit flips up front; costs one extra full read
        per file).
    io_retries / io_backoff:
        Transient ``OSError`` loads are retried ``io_retries`` times with
        ``io_backoff * 2**attempt`` sleeps.  :class:`CorruptSnapshotError`
        is permanent and never retried.
    cache_bytes:
        Optional byte ceiling for the resident decoded column blocks.
        Loads are lazy (:func:`~repro.scan.columnar.open_columnar`), so a
        snapshot is charged for what its kernels have actually touched —
        the charge grows block-by-block as columns decode.  When set,
        eviction is byte-denominated: the LRU entry goes whenever the
        total exceeds the ceiling, down to a floor of one entry (a single
        snapshot larger than the ceiling is still served — the run
        degrades rather than refusing).  A
        :class:`~repro.core.runcontrol.MemoryBudget` supplies this as its
        ``cache_bytes`` share.
    """

    def __init__(
        self,
        directory: str | Path,
        paths: PathTable | None = None,
        cache_size: int = 2,
        on_error: str = "raise",
        verify: str = "header",
        io_retries: int = 2,
        io_backoff: float = 0.05,
        cache_bytes: int | None = None,
        files: list[str | Path] | None = None,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if cache_bytes is not None and cache_bytes < 1:
            raise ValueError("cache_bytes must be >= 1 (or None for unlimited)")
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
            )
        if verify not in ("header", "deep"):
            raise ValueError(f"verify must be 'header' or 'deep', got {verify!r}")
        self.directory = Path(directory)
        self.on_error = on_error
        self.io_retries = max(0, int(io_retries))
        self.io_backoff = float(io_backoff)
        self.health = ArchiveHealthReport(
            quarantine_dir=str(self.directory / QUARANTINE_DIRNAME)
        )
        if files is None:
            files = sorted(self.directory.glob("*.rpq"))
        else:
            # an explicit (manifest-pinned) window: a reader following a
            # live archive sees exactly the published generation's files —
            # stray .rpq from a torn publish never enter the window, and a
            # listed-but-missing file is a typed fault, not a silent gap
            files = [Path(f) for f in files]
        if not files:
            raise FileNotFoundError(f"no .rpq snapshots under {self.directory}")
        survivors: list[Path] = []
        headers: list[dict] = []
        self.health.scanned = len(files)
        for f in files:
            try:
                if not f.exists():
                    raise CorruptSnapshotError(
                        f, "listed in the manifest but missing on disk"
                    )
                header = read_columnar_header(f)
                if verify == "deep":
                    # throwaway table: paths of a file that may later be
                    # dropped must not pollute the shared interning
                    read_columnar(f, PathTable())
            except CorruptSnapshotError as exc:
                self._handle_fault(f, exc)
                continue
            survivors.append(f)
            headers.append(header)
        self.health.ok = len(survivors)
        if not survivors:
            raise CorruptSnapshotError(
                self.directory,
                f"all {len(files)} snapshot files are corrupt "
                f"(policy {self.on_error!r} left an empty window)",
            )
        order = np.argsort([h["timestamp"] for h in headers], kind="stable")
        self._files = [survivors[i] for i in order]
        self._headers = [headers[i] for i in order]
        self.paths = paths if paths is not None else PathTable()
        self._cache: OrderedDict[int, Snapshot] = OrderedDict()
        self._cache_size = cache_size
        self._cache_bytes_limit = cache_bytes
        self._cache_nbytes: dict[int, int] = {}
        # guards the cache, the byte accounting, and PathTable interning
        # (intern mutates unsynchronized dict/list/array state) for
        # concurrent readers sharing one collection (the serving layer).
        # Lock ordering: a snapshot's per-block decode lock may acquire
        # this lock (decode hooks); store code never acquires a snapshot
        # lock, so the order is acyclic.
        self._lock = threading.RLock()
        #: observability: how many loads hit the disk vs the cache
        self.loads = 0
        self.hits = 0
        #: block-level counters: first-touch decodes vs resident-block reuse
        self.block_misses = 0
        self.block_hits = 0
        #: decoded bytes currently resident / high-water mark across the run
        self.cache_bytes_used = 0
        self.peak_cache_bytes = 0

    # -- degradation policy --------------------------------------------------

    def _handle_fault(self, path: Path, exc: CorruptSnapshotError) -> None:
        """Apply the on_error policy to one corrupt file."""
        if self.on_error == "raise":
            raise exc
        action = "skipped"
        if self.on_error == "quarantine":
            qdir = self.directory / QUARANTINE_DIRNAME
            qdir.mkdir(exist_ok=True)
            try:
                shutil.move(str(path), str(qdir / path.name))
                action = "quarantined"
            except OSError as move_exc:  # pragma: no cover - exotic fs state
                action = f"skipped (quarantine failed: {move_exc})"
        self.health.faults.append(
            SnapshotFault(
                path=str(path), reason=exc.reason, offset=exc.offset, action=action
            )
        )
        warnings.warn(
            f"corrupt snapshot {path}: {exc.reason} — {action}",
            RuntimeWarning,
            stacklevel=4,
        )

    # -- cache observability -------------------------------------------------

    @property
    def misses(self) -> int:
        """Disk loads — every cache miss is exactly one columnar read."""
        return self.loads

    def cache_info(self) -> CacheInfo:
        """Hit/miss counters in ``functools.lru_cache`` style.

        The fused-pass tests assert ``misses == len(collection)`` — each
        snapshot read from disk exactly once across a full ``analyze()``.
        """
        return CacheInfo(
            hits=self.hits,
            misses=self.loads,
            maxsize=self._cache_size,
            currsize=len(self._cache),
            bytes=self.cache_bytes_used,
            bytes_limit=self._cache_bytes_limit,
            block_hits=self.block_hits,
            block_misses=self.block_misses,
        )

    def health_report(self) -> ArchiveHealthReport:
        """The archive's :class:`ArchiveHealthReport` (``cache_info`` style)."""
        return self.health

    # -- collection interface ------------------------------------------------

    def __len__(self) -> int:
        return len(self._files)

    def _quarantine_file(self, path: Path) -> None:
        if self.on_error == "quarantine":
            qdir = self.directory / QUARANTINE_DIRNAME
            qdir.mkdir(exist_ok=True)
            try:
                shutil.move(str(path), str(qdir / path.name))
            except OSError:  # pragma: no cover - exotic fs state
                pass

    def _load(self, path: Path, idx: int) -> Snapshot:
        """One lazy columnar open with transient-I/O retry + backoff.

        The open itself decodes only the header and the path table; every
        numeric block decodes on first touch, reporting into this
        collection's byte accounting and block hit/miss counters.  A flaky
        open (``OSError``/EIO under load) gets ``io_retries`` chances with
        ``io_backoff * 2**attempt`` sleeps; a failed integrity check
        (:class:`CorruptSnapshotError`) is permanent — whether it surfaces
        at open time or on a later lazy block touch, under the
        ``quarantine`` policy the file is moved aside so the *next*
        construction sees a clean window, and the error is raised either
        way (a fused pass cannot drop an index mid-run).
        """
        for attempt in range(self.io_retries + 1):
            try:
                return open_columnar(
                    path,
                    self.paths,
                    on_decode=lambda name, nbytes: self._on_block_decode(
                        idx, nbytes
                    ),
                    on_hit=lambda name: self._on_block_hit(),
                    on_corrupt=lambda exc: self._quarantine_file(path),
                    io_retries=self.io_retries,
                    io_backoff=self.io_backoff,
                    on_io_retry=self._note_io_retry,
                )
            except CorruptSnapshotError:
                self._quarantine_file(path)
                raise
            except OSError:
                if attempt >= self.io_retries:
                    raise
                self._note_io_retry()
                time.sleep(self.io_backoff * (2 ** attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _note_io_retry(self) -> None:
        """Count one transient-I/O retry (eager open or lazy block touch)."""
        with self._lock:
            self.health.io_retries += 1

    def _on_block_decode(self, idx: int, nbytes: int) -> None:
        """Account one first-touch block decode against the byte budget."""
        with self._lock:
            self.block_misses += 1
            if idx in self._cache_nbytes:
                self._cache_nbytes[idx] += nbytes
                self.cache_bytes_used += nbytes
                self._evict()
                self.peak_cache_bytes = max(
                    self.peak_cache_bytes, self.cache_bytes_used
                )
            # else: the snapshot was already evicted but a caller still holds
            # it — its blocks are no longer the cache's bytes to account

    def _on_block_hit(self) -> None:
        with self._lock:
            self.block_hits += 1

    def __getitem__(self, idx: int) -> Snapshot:
        if idx < 0:
            idx += len(self)
        if not 0 <= idx < len(self):
            raise IndexError(idx)
        # the lock spans the load: open_columnar interns path strings into
        # the shared PathTable, which is not safe under concurrent mutation
        with self._lock:
            cached = self._cache.get(idx)
            if cached is not None:
                self.hits += 1
                self._cache.move_to_end(idx)
                return cached
            snap = self._load(self._files[idx], idx)
            self.loads += 1
            self._cache[idx] = snap
            nbytes = getattr(snap, "resident_nbytes", snap.column_nbytes)()
            self._cache_nbytes[idx] = nbytes = int(nbytes)
            self.cache_bytes_used += nbytes
            self._evict()
            self.peak_cache_bytes = max(
                self.peak_cache_bytes, self.cache_bytes_used
            )
            return snap

    def _evict(self) -> None:
        """Drop LRU entries until both the entry and byte ceilings hold.

        Byte eviction floors at one resident entry: a single snapshot
        larger than ``cache_bytes`` is still served (degrade, don't
        refuse), which is why ``cache_info().bytes`` can exceed the limit
        only in that one-oversized-snapshot case.
        """
        limit = self._cache_bytes_limit
        while len(self._cache) > self._cache_size or (
            limit is not None
            and self.cache_bytes_used > limit
            and len(self._cache) > 1
        ):
            evicted, _ = self._cache.popitem(last=False)
            self.cache_bytes_used -= self._cache_nbytes.pop(evicted, 0)

    def warm_paths(self, idx: int) -> None:
        """Intern snapshot ``idx``'s path strings without a full load.

        Reproduces exactly the PathTable mutation ``self[idx]`` would make,
        at the cost of reading only the path-table block.  The resume path
        calls this for already-journaled snapshots, in index order, so path
        ids in restored kernel partials match the live interning.
        """
        if not 0 <= idx < len(self):
            raise IndexError(idx)
        read_columnar_paths(self._files[idx], self.paths)

    def __iter__(self) -> Iterator[Snapshot]:
        for i in range(len(self)):
            yield self[i]

    @property
    def labels(self) -> list[str]:
        return [h["label"] for h in self._headers]

    @property
    def files(self) -> list[Path]:
        """The window's .rpq paths in timestamp order (a copy)."""
        return list(self._files)

    @property
    def timestamps(self) -> np.ndarray:
        return np.array([h["timestamp"] for h in self._headers], dtype=np.int64)

    @property
    def row_counts(self) -> np.ndarray:
        """Entry counts per snapshot, from headers alone (no data load)."""
        return np.array([h["rows"] for h in self._headers], dtype=np.int64)

    def content_ids(self) -> list[int]:
        """Per-snapshot content identities, from headers alone (no load).

        CRC32 over each header's (label, timestamp, rows, per-block
        name/rows/crc32) — the per-block CRCs make this a digest of the
        full file bytes at headers-only cost.  The incremental path binds
        these into the journaled kernel state so a position rewritten
        with *different data under the same label* (the synthetic
        simulator is not prefix-stable across window lengths) discards
        the state instead of replaying deltas onto a mismatched base.
        """
        import json
        import zlib

        ids: list[int] = []
        for h in self._headers:
            key = json.dumps(
                [
                    h.get("label"),
                    int(h.get("timestamp", -1)),
                    int(h.get("rows", -1)),
                    [
                        [c.get("name"), int(c.get("rows", -1)),
                         int(c.get("crc32", -1))]
                        for c in h.get("columns", [])
                    ],
                ],
                separators=(",", ":"),
            ).encode("utf-8")
            ids.append(zlib.crc32(key))
        return ids

    def max_snapshot_nbytes(self) -> int:
        """Upper-bound decoded size of the largest snapshot, headers only.

        ``rows * len(NUMERIC_COLUMNS) * 8`` — every numeric column decodes
        to int64/float64, so this bounds ``column_nbytes`` without loading
        anything.  The engine sizes memory-budgeted dispatch waves with it.
        """
        if not self._headers:
            return 0
        rows = max(int(h["rows"]) for h in self._headers)
        return rows * len(NUMERIC_COLUMNS) * 8

    def total_decoded_nbytes_estimate(self) -> int:
        """Upper-bound decoded size of *all* snapshots, headers only.

        The engine uses this to decide whether a whole disk collection can
        ride the shared-memory transport (one decode, every worker and
        every wave reuses it) or must fall back to per-worker lazy reads.
        """
        return sum(
            int(h["rows"]) * len(NUMERIC_COLUMNS) * 8 for h in self._headers
        )

    def __getstate__(self) -> dict:
        """Pickle without the resident cache (spawn/pickle transport).

        Lazy snapshots hold mmap-backed views that cannot cross a process
        boundary; the receiving process re-opens lazily against the same
        files (sharing the OS page cache with the parent) and starts with
        fresh counters for its own accounting.
        """
        state = self.__dict__.copy()
        state["_cache"] = OrderedDict()
        state["_cache_nbytes"] = {}
        state["cache_bytes_used"] = 0
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def quarantine_task_failure(self, idx: int, reason: str) -> None:
        """Record snapshot ``idx`` as quarantined by the engine's breaker.

        The circuit breaker calls this when a snapshot's *task* (not its
        bytes) failed ``max_task_failures`` times — e.g. a kernel that
        keeps crashing the worker on one input.  The existing ``on_error``
        policy applies: ``skip`` records the fault in the
        :class:`ArchiveHealthReport`; ``quarantine`` also moves the file
        aside so the next construction starts clean.  Under
        ``on_error="raise"`` the breaker is never armed, so this raises.
        """
        if self.on_error == "raise":
            raise RuntimeError(
                "quarantine_task_failure requires on_error='skip' or "
                "'quarantine' (breaker must not be armed under 'raise')"
            )
        if not 0 <= idx < len(self):
            raise IndexError(idx)
        path = self._files[idx]
        action = "skipped"
        if self.on_error == "quarantine":
            qdir = self.directory / QUARANTINE_DIRNAME
            qdir.mkdir(exist_ok=True)
            try:
                shutil.move(str(path), str(qdir / path.name))
                action = "quarantined"
            except OSError as move_exc:  # pragma: no cover - exotic fs state
                action = f"skipped (quarantine failed: {move_exc})"
        with self._lock:
            self.health.faults.append(
                SnapshotFault(
                    path=str(path),
                    reason=f"task failures exhausted: {reason}",
                    offset=None,
                    action=action,
                )
            )
            if idx in self._cache:
                del self._cache[idx]
                self.cache_bytes_used -= self._cache_nbytes.pop(idx, 0)
        warnings.warn(
            f"snapshot {path.name} quarantined after repeated task "
            f"failures: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )

    def pairs(self) -> Iterator[tuple[Snapshot, Snapshot]]:
        for i in range(1, len(self)):
            yield self[i - 1], self[i]

    def union_path_ids(self) -> np.ndarray:
        """Unique path ids across all snapshots, streamed one at a time."""
        seen: np.ndarray | None = None
        for snap in self:
            ids = snap.path_id
            seen = ids.copy() if seen is None else np.union1d(seen, ids)
        return seen if seen is not None else np.empty(0, dtype=np.int64)

    def subset(self, indices) -> "DiskSnapshotCollection":
        """A view over ``indices``, sharing the parent's PathTable.

        Sharing contract: ``subset().paths`` **is** the parent's mutable
        table — loads through either view intern into the same table, so a
        path string resolves to the same id no matter which view loaded it
        first (including after partial parent loads).  Cache and hit/miss
        counters are per-view and start fresh; the health report and the
        transient-I/O retry policy are inherited by reference/value
        respectively, so faults observed through a subset still land in the
        parent's :class:`ArchiveHealthReport`.
        """
        out = DiskSnapshotCollection.__new__(DiskSnapshotCollection)
        out.directory = self.directory
        out.on_error = self.on_error
        out.io_retries = self.io_retries
        out.io_backoff = self.io_backoff
        out.health = self.health
        out._files = [self._files[i] for i in indices]
        out._headers = [self._headers[i] for i in indices]
        out.paths = self.paths
        out._cache = OrderedDict()
        out._cache_size = self._cache_size
        out._cache_bytes_limit = self._cache_bytes_limit
        out._cache_nbytes = {}
        out.loads = 0
        out.hits = 0
        out.block_misses = 0
        out.block_hits = 0
        out.cache_bytes_used = 0
        out.peak_cache_bytes = 0
        out._lock = threading.RLock()
        return out
