"""Out-of-core snapshot store: analyze archived snapshots without loading
the whole window into memory.

The paper's input was 8.5 TB of snapshots — far beyond RAM — which is why
the authors reached for Spark over Parquet files (§3).  The equivalent
here: archive snapshots to the columnar format once, then run the analyses
over a :class:`DiskSnapshotCollection`, which exposes the same interface as
the in-memory :class:`~repro.scan.snapshot.SnapshotCollection` but loads
snapshots lazily with a small LRU cache (adjacent-pair analyses like
Figure 13 need exactly two resident snapshots at a time).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from collections.abc import Iterator
from pathlib import Path
from typing import NamedTuple

import numpy as np

from repro.scan.columnar import MAGIC, read_columnar
from repro.scan.paths import PathTable
from repro.scan.snapshot import Snapshot


class CacheInfo(NamedTuple):
    """LRU cache counters, ``functools.lru_cache``-style."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


def read_columnar_header(path: str | Path) -> dict:
    """Read only the header (label, timestamp, rows) of a columnar file."""
    with open(path, "rb") as fh:
        magic = fh.read(4)
        if magic != MAGIC:
            raise IOError(f"{path}: not a columnar snapshot (magic {magic!r})")
        header_len = int.from_bytes(fh.read(4), "little")
        header = json.loads(fh.read(header_len).decode("utf-8"))
    return {
        "label": header["label"],
        "timestamp": int(header["timestamp"]),
        "rows": int(header["rows"]),
    }


class DiskSnapshotCollection:
    """Lazy, LRU-cached view over a directory of ``.rpq`` snapshot files.

    Interface-compatible with the analyses' use of ``SnapshotCollection``:
    ``len``, indexing, iteration, ``pairs()``, ``labels``, ``timestamps``,
    ``union_path_ids()``, ``subset()``, and a shared ``paths`` table (paths
    are interned on first load, so path ids stay consistent across
    snapshots within one session).
    """

    def __init__(
        self,
        directory: str | Path,
        paths: PathTable | None = None,
        cache_size: int = 2,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.directory = Path(directory)
        files = sorted(self.directory.glob("*.rpq"))
        if not files:
            raise FileNotFoundError(f"no .rpq snapshots under {self.directory}")
        headers = [read_columnar_header(f) for f in files]
        order = np.argsort([h["timestamp"] for h in headers], kind="stable")
        self._files = [files[i] for i in order]
        self._headers = [headers[i] for i in order]
        self.paths = paths if paths is not None else PathTable()
        self._cache: OrderedDict[int, Snapshot] = OrderedDict()
        self._cache_size = cache_size
        #: observability: how many loads hit the disk vs the cache
        self.loads = 0
        self.hits = 0

    # -- cache observability -------------------------------------------------

    @property
    def misses(self) -> int:
        """Disk loads — every cache miss is exactly one columnar read."""
        return self.loads

    def cache_info(self) -> CacheInfo:
        """Hit/miss counters in ``functools.lru_cache`` style.

        The fused-pass tests assert ``misses == len(collection)`` — each
        snapshot read from disk exactly once across a full ``analyze()``.
        """
        return CacheInfo(
            hits=self.hits,
            misses=self.loads,
            maxsize=self._cache_size,
            currsize=len(self._cache),
        )

    # -- collection interface ------------------------------------------------

    def __len__(self) -> int:
        return len(self._files)

    def __getitem__(self, idx: int) -> Snapshot:
        if idx < 0:
            idx += len(self)
        if not 0 <= idx < len(self):
            raise IndexError(idx)
        cached = self._cache.get(idx)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(idx)
            return cached
        snap = read_columnar(self._files[idx], self.paths)
        self.loads += 1
        self._cache[idx] = snap
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return snap

    def __iter__(self) -> Iterator[Snapshot]:
        for i in range(len(self)):
            yield self[i]

    @property
    def labels(self) -> list[str]:
        return [h["label"] for h in self._headers]

    @property
    def timestamps(self) -> np.ndarray:
        return np.array([h["timestamp"] for h in self._headers], dtype=np.int64)

    @property
    def row_counts(self) -> np.ndarray:
        """Entry counts per snapshot, from headers alone (no data load)."""
        return np.array([h["rows"] for h in self._headers], dtype=np.int64)

    def pairs(self) -> Iterator[tuple[Snapshot, Snapshot]]:
        for i in range(1, len(self)):
            yield self[i - 1], self[i]

    def union_path_ids(self) -> np.ndarray:
        """Unique path ids across all snapshots, streamed one at a time."""
        seen: np.ndarray | None = None
        for snap in self:
            ids = snap.path_id
            seen = ids.copy() if seen is None else np.union1d(seen, ids)
        return seen if seen is not None else np.empty(0, dtype=np.int64)

    def subset(self, indices) -> "DiskSnapshotCollection":
        out = DiskSnapshotCollection.__new__(DiskSnapshotCollection)
        out.directory = self.directory
        out._files = [self._files[i] for i in indices]
        out._headers = [self._headers[i] for i in indices]
        out.paths = self.paths
        out._cache = OrderedDict()
        out._cache_size = self._cache_size
        out.loads = 0
        out.hits = 0
        return out
