"""Directory-depth analysis (Figure 8(a), Figure 9, parts of Table 1).

Depth is the number of path components — the paper's CDF changes slope at
five because user-writable directories start at
``/lustre/atlas{1,2}/<domain>/<project>/<user>``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.analysis.rows import ROWS_KERNEL, RowCensus, rows_kernel
from repro.stats.cdf import Cdf, ecdf
from repro.stats.dispersion import five_number_summary


@dataclass
class DepthResult:
    """Directory-depth distributions."""

    #: Figure 8(a): CDF of each project's maximum directory depth.
    project_max_depth: Cdf
    #: CDF over all unique directories' depths.
    all_dirs: Cdf
    #: Figure 9 / Table 1: per-domain five-number summary of dir depths.
    by_domain: dict[str, dict[str, float]]
    #: overall deepest directory and the domain it belongs to (§4.1.2
    #: calls out a 2,030-deep stf stress tree and a 432-deep gen project)
    max_depth: int
    max_depth_domain: str

    def fraction_deeper_than(self, depth: int) -> float:
        """Share of projects with max depth > ``depth`` (paper: >30% at 10)."""
        return self.project_max_depth.tail_fraction(depth)

    def median_by_domain(self) -> dict[str, float]:
        return {code: s["median"] for code, s in self.by_domain.items()}


def depths_from_census(
    ctx: AnalysisContext,
    census: RowCensus,
    exclude_deepest_chain: bool = True,
) -> DepthResult:
    """Depth distributions over all unique directories ever observed.

    ``exclude_deepest_chain`` drops, per domain, the directories on the
    single deepest root-to-leaf chain from the *quartile* statistics (the
    ``max`` column always reports the raw maximum).  This is the paper's own
    convention — §4.1.2 reports the 432 maximum "excluding an experimental
    project in Staff (depth 2,030) for stress testing the metadata server".
    At reduced simulation scale the stress chains would otherwise dominate
    their domain's median; at OLCF scale they are invisible among millions
    of directories.
    """
    # unique directory paths with first-seen gid
    uniq, gid = census.dir_pid, census.dir_gid
    depths = ctx.collection.paths.depths_of(uniq)
    dom = ctx.domain_ids_of_gids(gid)

    by_domain: dict[str, dict[str, float]] = {}
    max_depth = 0
    max_domain = ""
    table = ctx.collection.paths
    for code in ctx.domain_codes:
        mask = dom == ctx.domain_index[code]
        if not mask.any():
            continue
        sample = depths[mask]
        top = int(sample.max())
        quartile_sample = sample
        if exclude_deepest_chain and sample.size > 1:
            # ancestors of the deepest directory form the chain to drop
            deepest_pid = int(uniq[mask][np.argmax(sample)])
            chain = table.path_of(deepest_pid) + "/"
            keep = np.fromiter(
                (
                    not chain.startswith(table.path_of(int(p)) + "/")
                    for p in uniq[mask]
                ),
                dtype=bool,
                count=sample.size,
            )
            if keep.any():
                quartile_sample = sample[keep]
        summary = five_number_summary(quartile_sample)
        summary["max"] = float(top)  # max always reported raw
        by_domain[code] = summary
        if top > max_depth:
            max_depth, max_domain = top, code

    # per-project max depth (Figure 8(a))
    proj_max: dict[int, int] = {}
    for g, d in zip(gid, depths):
        g = int(g)
        if d > proj_max.get(g, 0):
            proj_max[g] = int(d)
    project_cdf = ecdf(np.array(list(proj_max.values())))

    return DepthResult(
        project_max_depth=project_cdf,
        all_dirs=ecdf(depths),
        by_domain=by_domain,
        max_depth=max_depth,
        max_depth_domain=max_domain,
    )


def directory_depths(
    ctx: AnalysisContext, exclude_deepest_chain: bool = True
) -> DepthResult:
    """Depth distributions over all unique directories (Figures 8a and 9)."""
    census = ctx.run_kernels([rows_kernel()])[ROWS_KERNEL]
    return depths_from_census(ctx, census, exclude_deepest_chain)
