"""CSV exporters — plotting-ready data for every figure series.

The report renderers print paper-style text; these exporters write the
underlying series as CSV so the figures can be re-plotted with any tool
(``repro-pipeline --export-dir out/`` drives them all).
"""

from __future__ import annotations

import csv
from pathlib import Path


from repro.core.durable import atomic_write
from repro.core.pipeline import PaperReport
from repro.stats.histogram import log_binned_histogram


def _write_rows(path: Path, header: list[str], rows) -> None:
    # atomic (tmp + fsync + rename): a crash mid-export never leaves a
    # half-written CSV that a downstream plotting job would ingest
    with atomic_write(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)


def export_table1(report: PaperReport, path: Path) -> None:
    rows = [
        (
            r.domain, r.name, r.n_projects, f"{r.entries_k:.3f}",
            f"{r.depth_median:.0f}", f"{r.depth_max:.0f}",
            r.top_ext, f"{r.top_ext_pct:.2f}", "/".join(r.languages),
            r.max_ost,
            "" if r.write_cv is None else f"{r.write_cv:.4f}",
            "" if r.read_cv is None else f"{r.read_cv:.5f}",
            f"{r.network_pct:.2f}", f"{r.collab_pct:.2f}",
        )
        for r in report.table1
    ]
    _write_rows(
        path,
        ["domain", "name", "projects", "entries_k", "depth_median",
         "depth_max", "top_ext", "top_ext_pct", "languages", "max_ost",
         "write_cv", "read_cv", "network_pct", "collab_pct"],
        rows,
    )


def export_extension_trend(report: PaperReport, path: Path) -> None:
    trend = report.fig10
    header = ["week"] + trend.extensions + ["no_extension", "other"]
    rows = []
    for i, label in enumerate(trend.labels):
        rows.append(
            [label]
            + [f"{trend.shares[i, j]:.5f}" for j in range(len(trend.extensions))]
            + [f"{trend.no_extension[i]:.5f}", f"{trend.other[i]:.5f}"]
        )
    _write_rows(path, header, rows)


def export_growth(report: PaperReport, path: Path) -> None:
    series = report.fig15
    rows = []
    for i, label in enumerate(series.labels):
        row = [label, int(series.files[i]), int(series.directories[i])]
        if series.snapshot_bytes is not None:
            row.append(int(series.snapshot_bytes[i]))
        rows.append(row)
    header = ["week", "files", "directories"]
    if series.snapshot_bytes is not None:
        header.append("snapshot_bytes")
    _write_rows(path, header, rows)


def export_ages(report: PaperReport, path: Path) -> None:
    ages = report.fig16
    rows = [
        (label, f"{ages.mean_age_days[i]:.2f}", f"{ages.median_age_days[i]:.2f}")
        for i, label in enumerate(ages.labels)
    ]
    _write_rows(path, ["week", "mean_age_days", "median_age_days"], rows)


def export_access(report: PaperReport, path: Path) -> None:
    rows = []
    for week in report.fig13.weeks:
        f = week.fractions()
        rows.append(
            (week.label, week.new, week.deleted, week.readonly, week.updated,
             week.untouched, f"{f['new']:.5f}", f"{f['untouched']:.5f}")
        )
    _write_rows(
        path,
        ["week", "new", "deleted", "readonly", "updated", "untouched",
         "new_frac", "untouched_frac"],
        rows,
    )


def export_degree_distribution(report: PaperReport, path: Path) -> None:
    degrees = report.fig18.degrees
    positive = degrees[degrees > 0].astype(float)
    centers, dens = log_binned_histogram(positive)
    _write_rows(
        path,
        ["degree_bin_center", "density"],
        [(f"{c:.4f}", f"{d:.8f}") for c, d in zip(centers, dens)],
    )


def export_participation(report: PaperReport, path: Path) -> None:
    ppu = report.fig6.projects_per_user
    upp = report.fig6.users_per_project
    rows = [("projects_per_user", v, p) for v, p in ppu.as_series()]
    rows += [("users_per_project", v, p) for v, p in upp.as_series()]
    _write_rows(path, ["distribution", "value", "cdf"], rows)


def export_depth_cdf(report: PaperReport, path: Path) -> None:
    cdf = report.fig8_depth.all_dirs
    _write_rows(
        path, ["depth", "cdf"], [(int(v), f"{p:.6f}") for v, p in cdf.as_series()]
    )


def export_burstiness(report: PaperReport, path: Path) -> None:
    rows = []
    for kind, stats in (
        ("write", report.fig17.write_by_domain),
        ("read", report.fig17.read_by_domain),
    ):
        for code, s in sorted(stats.items()):
            rows.append(
                (kind, code, f"{s['min']:.6f}", f"{s['q1']:.6f}",
                 f"{s['median']:.6f}", f"{s['q3']:.6f}", f"{s['max']:.6f}")
            )
    _write_rows(path, ["kind", "domain", "min", "q1", "median", "q3", "max"], rows)


#: exporter registry: file name → function
EXPORTERS = {
    "table1.csv": export_table1,
    "fig10_extension_trend.csv": export_extension_trend,
    "fig15_growth.csv": export_growth,
    "fig16_ages.csv": export_ages,
    "fig13_access.csv": export_access,
    "fig18_degree.csv": export_degree_distribution,
    "fig06_participation.csv": export_participation,
    "fig08_depth_cdf.csv": export_depth_cdf,
    "fig17_burstiness.csv": export_burstiness,
}

#: report field each exporter reads; partial reports (``--analyses``) skip
#: exporters whose field was not computed.
_EXPORT_FIELDS = {
    "table1.csv": "table1",
    "fig10_extension_trend.csv": "fig10",
    "fig15_growth.csv": "fig15",
    "fig16_ages.csv": "fig16",
    "fig13_access.csv": "fig13",
    "fig18_degree.csv": "fig18",
    "fig06_participation.csv": "fig6",
    "fig08_depth_cdf.csv": "fig8_depth",
    "fig17_burstiness.csv": "fig17",
}


def export_all(report: PaperReport, directory: str | Path) -> list[Path]:
    """Write every registered CSV (for the report's computed sections);
    returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, exporter in EXPORTERS.items():
        if getattr(report, _EXPORT_FIELDS[name]) is None:
            continue
        path = directory / name
        exporter(report, path)
        written.append(path)
    return written
