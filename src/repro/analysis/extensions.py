"""File-type (extension) analysis — Table 2 and Figure 10 (§4.1.3).

Popularity is measured over unique files accumulated across snapshots; the
temporal trend recomputes shares per snapshot for the global top-20
extensions plus the paper's two explicit buckets, *no extension* and
*other*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.scan.extensions import NO_EXTENSION
from repro.stats.dispersion import gini


@dataclass
class DomainExtensions:
    """Table 2 row: a domain's top extensions with popularity (%)."""

    domain: str
    top: list[tuple[str, float]]  # (extension, percent of domain files)
    n_files: int
    concentration: float  # gini over the extension count histogram

    @property
    def dominant(self) -> bool:
        """Is the #1 extension > 40% (Table 2 bold rows)?"""
        return bool(self.top and self.top[0][1] > 40.0)


def extensions_by_domain(
    ctx: AnalysisContext, top_k: int = 3
) -> dict[str, DomainExtensions]:
    """Table 2: per-domain top-``top_k`` extensions over unique files."""
    pids, gids = [], []
    for snap in ctx.collection:
        mask = snap.is_file
        pids.append(snap.path_id[mask])
        gids.append(snap.gid[mask].astype(np.int64))
    pid = np.concatenate(pids)
    uniq, first = np.unique(pid, return_index=True)
    gid = np.concatenate(gids)[first]
    ext = ctx.collection.paths.ext_ids_of(uniq)
    dom = ctx.domain_ids_of_gids(gid)
    names = ctx.collection.paths.extensions.names

    out: dict[str, DomainExtensions] = {}
    for code in ctx.domain_codes:
        mask = dom == ctx.domain_index[code]
        if not mask.any():
            continue
        ids, counts = np.unique(ext[mask], return_counts=True)
        total = int(counts.sum())
        # the paper's Table 2 ranks real extensions; the no-extension
        # bucket is tracked separately in Figure 10
        order = np.argsort(counts)[::-1]
        top: list[tuple[str, float]] = []
        for idx in order:
            eid = int(ids[idx])
            if names[eid] == NO_EXTENSION:
                continue
            top.append((names[eid], 100.0 * counts[idx] / total))
            if len(top) == top_k:
                break
        out[code] = DomainExtensions(
            domain=code,
            top=top,
            n_files=total,
            concentration=gini(counts.astype(np.float64)),
        )
    return out


@dataclass
class ExtensionTrend:
    """Figure 10: weekly share of the global top-20 extensions."""

    labels: list[str]  # snapshot labels, chronological
    extensions: list[str]  # top-20 extension names, by overall rank
    shares: np.ndarray  # (n_snapshots, 20) share per snapshot
    no_extension: np.ndarray  # share of files with no extension
    other: np.ndarray  # share of everything else

    @property
    def mean_other(self) -> float:
        """Paper: ≈35% on average."""
        return float(self.other.mean())

    @property
    def mean_no_extension(self) -> float:
        """Paper: ≈16% on average."""
        return float(self.no_extension.mean())

    def spike_week(self, extension: str) -> str:
        """Snapshot label where an extension's share peaks (e.g. ``bb``)."""
        idx = self.extensions.index(extension)
        return self.labels[int(np.argmax(self.shares[:, idx]))]


def extension_trend(ctx: AnalysisContext, top_k: int = 20) -> ExtensionTrend:
    """Figure 10: global top-``top_k`` extension shares per snapshot."""
    paths = ctx.collection.paths
    names = paths.extensions.names
    noext_id = paths.extensions.no_extension_id

    # global ranking over unique files
    pids = np.concatenate([s.path_id[s.is_file] for s in ctx.collection])
    uniq = np.unique(pids)
    ext_u = paths.ext_ids_of(uniq)
    ids, counts = np.unique(ext_u, return_counts=True)
    order = np.argsort(counts)[::-1]
    top_ids = [int(ids[i]) for i in order if int(ids[i]) != noext_id][:top_k]
    top_names = [names[e] for e in top_ids]
    rank_of = {e: i for i, e in enumerate(top_ids)}

    n = len(ctx.collection)
    shares = np.zeros((n, len(top_ids)))
    noext = np.zeros(n)
    other = np.zeros(n)
    labels = []
    for i, snap in enumerate(ctx.collection):
        labels.append(snap.label)
        ext = snap.ext_id()[snap.is_file]
        total = ext.size
        if total == 0:
            continue
        eids, ecounts = np.unique(ext, return_counts=True)
        covered = 0
        for eid, cnt in zip(eids, ecounts):
            eid = int(eid)
            if eid == noext_id:
                noext[i] = cnt / total
                covered += cnt
            elif eid in rank_of:
                shares[i, rank_of[eid]] = cnt / total
                covered += cnt
        other[i] = (total - covered) / total
    return ExtensionTrend(
        labels=labels,
        extensions=top_names,
        shares=shares,
        no_extension=noext,
        other=other,
    )
