"""File-type (extension) analysis — Table 2 and Figure 10 (§4.1.3).

Popularity is measured over unique files accumulated across snapshots; the
temporal trend recomputes shares per snapshot for the global top-20
extensions plus the paper's two explicit buckets, *no extension* and
*other*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.analysis.rows import ROWS_KERNEL, RowCensus, rows_kernel
from repro.query.engine import Kernel
from repro.scan.extensions import NO_EXTENSION
from repro.scan.snapshot import Snapshot
from repro.stats.dispersion import gini


@dataclass
class DomainExtensions:
    """Table 2 row: a domain's top extensions with popularity (%)."""

    domain: str
    top: list[tuple[str, float]]  # (extension, percent of domain files)
    n_files: int
    concentration: float  # gini over the extension count histogram

    @property
    def dominant(self) -> bool:
        """Is the #1 extension > 40% (Table 2 bold rows)?"""
        return bool(self.top and self.top[0][1] > 40.0)


def extensions_from_census(
    ctx: AnalysisContext, census: RowCensus, top_k: int = 3
) -> dict[str, DomainExtensions]:
    """Table 2 from the shared unique-row census."""
    ext = ctx.collection.paths.ext_ids_of(census.file_pid)
    dom = ctx.domain_ids_of_gids(census.file_gid)
    names = ctx.collection.paths.extensions.names

    out: dict[str, DomainExtensions] = {}
    for code in ctx.domain_codes:
        mask = dom == ctx.domain_index[code]
        if not mask.any():
            continue
        ids, counts = np.unique(ext[mask], return_counts=True)
        total = int(counts.sum())
        # the paper's Table 2 ranks real extensions; the no-extension
        # bucket is tracked separately in Figure 10
        order = np.argsort(counts)[::-1]
        top: list[tuple[str, float]] = []
        for idx in order:
            eid = int(ids[idx])
            if names[eid] == NO_EXTENSION:
                continue
            top.append((names[eid], 100.0 * counts[idx] / total))
            if len(top) == top_k:
                break
        out[code] = DomainExtensions(
            domain=code,
            top=top,
            n_files=total,
            concentration=gini(counts.astype(np.float64)),
        )
    return out


def extensions_by_domain(
    ctx: AnalysisContext, top_k: int = 3
) -> dict[str, DomainExtensions]:
    """Table 2: per-domain top-``top_k`` extensions over unique files."""
    census = ctx.run_kernels([rows_kernel()])[ROWS_KERNEL]
    return extensions_from_census(ctx, census, top_k)


@dataclass
class ExtensionTrend:
    """Figure 10: weekly share of the global top-20 extensions."""

    labels: list[str]  # snapshot labels, chronological
    extensions: list[str]  # top-20 extension names, by overall rank
    shares: np.ndarray  # (n_snapshots, 20) share per snapshot
    no_extension: np.ndarray  # share of files with no extension
    other: np.ndarray  # share of everything else

    @property
    def mean_other(self) -> float:
        """Paper: ≈35% on average."""
        return float(self.other.mean())

    @property
    def mean_no_extension(self) -> float:
        """Paper: ≈16% on average."""
        return float(self.no_extension.mean())

    def spike_week(self, extension: str) -> str:
        """Snapshot label where an extension's share peaks (e.g. ``bb``)."""
        idx = self.extensions.index(extension)
        return self.labels[int(np.argmax(self.shares[:, idx]))]


def _map_ext_hist(snapshot: Snapshot) -> tuple[str, np.ndarray, np.ndarray, int]:
    """Per-snapshot extension histogram over file rows."""
    ext = snapshot.ext_id()[snapshot.is_file]
    eids, counts = np.unique(ext, return_counts=True)
    return snapshot.label, eids, counts, int(ext.size)


def ext_hist_kernel() -> Kernel:
    """Figure 10's per-snapshot half: weekly extension histograms."""
    return Kernel(
        name="ext_hist", map_fn=_map_ext_hist, reduce_fn=lambda rows: list(rows)
    )


def trend_from_census(
    ctx: AnalysisContext,
    census: RowCensus,
    hists: list[tuple[str, np.ndarray, np.ndarray, int]],
    top_k: int = 20,
) -> ExtensionTrend:
    """Figure 10 from the shared census (global ranking) plus the weekly
    histograms from :func:`ext_hist_kernel`."""
    paths = ctx.collection.paths
    names = paths.extensions.names
    noext_id = paths.extensions.no_extension_id

    # global ranking over unique files (census.file_pid is already the
    # sorted unique file-path census)
    ext_u = paths.ext_ids_of(census.file_pid)
    ids, counts = np.unique(ext_u, return_counts=True)
    order = np.argsort(counts)[::-1]
    top_ids = [int(ids[i]) for i in order if int(ids[i]) != noext_id][:top_k]
    top_names = [names[e] for e in top_ids]
    rank_of = {e: i for i, e in enumerate(top_ids)}

    n = len(hists)
    shares = np.zeros((n, len(top_ids)))
    noext = np.zeros(n)
    other = np.zeros(n)
    labels = []
    for i, (label, eids, ecounts, total) in enumerate(hists):
        labels.append(label)
        if total == 0:
            continue
        covered = 0
        for eid, cnt in zip(eids, ecounts):
            eid = int(eid)
            if eid == noext_id:
                noext[i] = cnt / total
                covered += cnt
            elif eid in rank_of:
                shares[i, rank_of[eid]] = cnt / total
                covered += cnt
        other[i] = (total - covered) / total
    return ExtensionTrend(
        labels=labels,
        extensions=top_names,
        shares=shares,
        no_extension=noext,
        other=other,
    )


def extension_trend(ctx: AnalysisContext, top_k: int = 20) -> ExtensionTrend:
    """Figure 10: global top-``top_k`` extension shares per snapshot."""
    results = ctx.run_kernels([rows_kernel(), ext_hist_kernel()])
    return trend_from_census(
        ctx, results[ROWS_KERNEL], results["ext_hist"], top_k
    )
