"""Text renderers: print results in the shape the paper reports them.

Every bench target formats its table/series through these helpers so the
regenerated artifacts read like the paper's, row for row.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.access import AccessPatternResult, FileAgeResult
from repro.analysis.burstiness import BurstinessResult
from repro.analysis.collaboration import CollaborationResult
from repro.analysis.depth import DepthResult
from repro.analysis.extensions import DomainExtensions, ExtensionTrend
from repro.analysis.files import DomainEntryCounts, FileCountCdfs
from repro.analysis.growth import GrowthSeries
from repro.analysis.languages import DomainLanguages, LanguageRanking
from repro.analysis.network import ComponentResult, DegreeResult
from repro.analysis.ost import StripeStats
from repro.analysis.table1 import Table1Row
from repro.analysis.users import ParticipationResult, UserProfile


def _fmt_cv(value: float | None, digits: int = 3) -> str:
    return f"{value:.{digits}f}" if value is not None else "-"


def render_table1(rows: list[Table1Row]) -> str:
    """Table 1, the paper's per-domain summary."""
    lines = [
        "Domain (projects)                 | Entries(K) | Depth[med,max] | Ext (%)        | Languages            | #OST | Write cv | Read cv | Network% | Collab%",
        "-" * 158,
    ]
    for r in rows:
        langs = ", ".join(r.languages) if r.languages else "-"
        lines.append(
            f"{r.name[:28]:<28}({r.n_projects:>3}) | {r.entries_k:>10.1f} | "
            f"[{r.depth_median:>4.0f},{r.depth_max:>5.0f}]   | "
            f"{r.top_ext[:8]:<8}({r.top_ext_pct:>4.1f}) | {langs[:20]:<20} | "
            f"{r.max_ost:>4} | {_fmt_cv(r.write_cv):>8} | {_fmt_cv(r.read_cv, 4):>7} | "
            f"{r.network_pct:>7.2f}% | {r.collab_pct:>6.2f}%"
        )
    return "\n".join(lines)


def render_table2(exts: dict[str, DomainExtensions]) -> str:
    """Table 2: top-3 extensions per domain (bold rows > 40%)."""
    lines = ["Domain | 1st (%) | 2nd (%) | 3rd (%)", "-" * 60]
    for code, row in sorted(exts.items()):
        cells = [f"{e} ({p:.1f})" for e, p in row.top[:3]]
        while len(cells) < 3:
            cells.append("-")
        mark = " *" if row.dominant else ""
        lines.append(f"{code:<6} | {cells[0]:<16} | {cells[1]:<16} | {cells[2]:<16}{mark}")
    return "\n".join(lines)


def render_table3(comp: ComponentResult) -> str:
    """Table 3: connected-component size distribution."""
    dist = comp.size_distribution
    sizes = sorted(dist)
    lines = [
        "Size  | " + " | ".join(f"{s:>5}" for s in sizes),
        "Count | " + " | ".join(f"{dist[s]:>5}" for s in sizes),
        f"components={comp.components.count}  largest={comp.components.largest_size} "
        f"({comp.largest_users} users, {comp.largest_projects} projects)  "
        f"diameter={comp.diameter}  coverage={comp.coverage:.1%}  "
        f"central-radius={comp.central_radius}",
    ]
    return "\n".join(lines)


def render_user_profile(profile: UserProfile) -> str:
    """Figure 5: org-type pie + per-domain user counts."""
    lines = [f"Active users: {profile.n_active} "
             f"(of {profile.n_registered_hint} registered)"]
    lines.append("By organization type (Figure 5a):")
    for org, frac in sorted(
        profile.org_fractions.items(), key=lambda kv: kv[1], reverse=True
    ):
        lines.append(f"  {org:<14} {frac:6.1%}")
    lines.append("By science domain (Figure 5b):")
    for code, count in sorted(
        profile.domain_counts.items(), key=lambda kv: kv[1], reverse=True
    ):
        lines.append(f"  {code:<5} {count:>5}")
    lines.append(
        f"Domain scientists: {profile.domain_scientist_fraction:.0%} "
        "(paper: >70%)"
    )
    return "\n".join(lines)


def render_participation(result: ParticipationResult) -> str:
    """Figure 6: participation CDF summary."""
    ppu = result.projects_per_user
    upp = result.users_per_project
    lines = [
        "Projects per user (Figure 6a):",
        f"  median={ppu.median:.0f}  P(>1)={result.multi_project_fraction:.1%}  "
        f"P(>2)={ppu.tail_fraction(2):.1%}  P(>=8)={result.heavy_user_fraction:.1%}",
        "Users per project (Figure 6b):",
        f"  median={upp.median:.0f}  mean={result.mean_users_per_project:.1f}  "
        f"P(<3)={upp.at(2.0):.1%}  P(>10)={upp.tail_fraction(10):.1%}",
        "Median users per project by domain (Figure 6c, >10 highlighted):",
    ]
    for code, med in sorted(
        result.median_users_by_domain.items(), key=lambda kv: kv[1], reverse=True
    ):
        marker = "  <== >10" if med > 10 else ""
        lines.append(f"  {code:<5} {med:>5.1f}{marker}")
    return "\n".join(lines)


def render_entry_counts(counts: DomainEntryCounts) -> str:
    """Figure 7: files/dirs and ratio per domain."""
    lines = [
        "Domain | files      | dirs       | dir share",
        "-" * 48,
    ]
    for code in sorted(counts.files):
        lines.append(
            f"{code:<6} | {counts.files[code]:>10,} | "
            f"{counts.directories.get(code, 0):>10,} | {counts.dir_ratio(code):>8.1%}"
        )
    lines.append(
        f"TOTAL  | {counts.grand_total_files:>10,} | "
        f"{counts.grand_total_directories:>10,} | mean-domain {counts.mean_dir_ratio:.1%}"
    )
    return "\n".join(lines)


def render_file_count_cdfs(result: FileCountCdfs) -> str:
    """Figure 8(b) summary."""
    return "\n".join(
        [
            f"median files/user    = {result.median_user_files:,.0f} "
            f"(max {result.max_user_files:,})",
            f"median files/project = {result.median_project_files:,.0f} "
            f"(max {result.max_project_files:,})",
            f"project/user ratio   = {result.project_to_user_ratio:.1f}x "
            "(paper: ~10x)",
            "top domains by mean files/project (excl. stf): "
            + ", ".join(f"{c} ({v:,.0f})" for c, v in result.top_domains_by_project_mean),
        ]
    )


def render_depths(result: DepthResult) -> str:
    """Figure 8(a) + Figure 9."""
    lines = [
        f"P(project max depth > 10) = {result.fraction_deeper_than(10):.1%} (paper: >30%)",
        f"P(project max depth > 15) = {result.fraction_deeper_than(15):.1%} (paper: <3%... shape)",
        f"max depth = {result.max_depth} in domain {result.max_depth_domain}",
        "Per-domain depth five-number summaries (Figure 9):",
    ]
    for code, s in sorted(result.by_domain.items()):
        lines.append(
            f"  {code:<5} min={s['min']:>3.0f} q1={s['q1']:>4.0f} "
            f"med={s['median']:>4.0f} q3={s['q3']:>4.0f} max={s['max']:>5.0f}"
        )
    return "\n".join(lines)


def render_extension_trend(trend: ExtensionTrend, every: int = 6) -> str:
    """Figure 10: top extensions over time (sampled columns)."""
    lines = [
        f"mean 'other' share        = {trend.mean_other:.1%} (paper: ~35%)",
        f"mean 'no extension' share = {trend.mean_no_extension:.1%} (paper: ~16%)",
        "Top-20 extensions (overall rank order): " + ", ".join(trend.extensions),
        "Weekly shares (sampled):",
    ]
    header = "week      " + " ".join(f"{e[:6]:>7}" for e in trend.extensions[:8])
    lines.append(header)
    for i in range(0, len(trend.labels), every):
        row = " ".join(f"{trend.shares[i, j]:>6.1%}" for j in range(min(8, trend.shares.shape[1])))
        lines.append(f"{trend.labels[i]}  {row}")
    return "\n".join(lines)


def render_language_ranking(ranking: LanguageRanking, top_k: int = 30) -> str:
    """Figure 11: ours vs IEEE Spectrum."""
    lines = ["rank | language     | files      | IEEE rank", "-" * 48]
    for i, (lang, count, ieee) in enumerate(ranking.rows(top_k), start=1):
        lines.append(f"{i:>4} | {lang:<12} | {count:>10,} | ({ieee})")
    return "\n".join(lines)


def render_domain_languages(langs: DomainLanguages, k: int = 2) -> str:
    """Figure 12: per-domain dominant languages."""
    lines = ["Domain | top languages", "-" * 40]
    for code in sorted(langs.shares):
        top = ", ".join(
            f"{lang} ({share:.0%})"
            for lang, share in sorted(
                langs.shares[code].items(), key=lambda kv: kv[1], reverse=True
            )[:k]
        )
        lines.append(f"{code:<6} | {top}")
    return "\n".join(lines)


def render_stripes(stats: StripeStats) -> str:
    """Figure 14: per-domain stripe stats."""
    lines = ["Domain | min | mean  | max", "-" * 34]
    for code, (lo, mean, hi) in sorted(stats.by_domain.items()):
        lines.append(f"{code:<6} | {lo:>3} | {mean:>5.1f} | {hi:>4}")
    lines.append(
        f"default-only domains: {len(stats.untouched_domains())} "
        f"(paper: 11); tuned: {len(stats.tuned_domains())} (paper: ~20); "
        f"max observed: {stats.max_observed}"
    )
    return "\n".join(lines)


def render_growth(series: GrowthSeries, every: int = 6) -> str:
    """Figure 15: growth series."""
    lines = ["week      | files      | dirs       | dir share"]
    for i in range(0, len(series.labels), every):
        lines.append(
            f"{series.labels[i]}  | {series.files[i]:>10,} | "
            f"{series.directories[i]:>10,} | {series.dir_share()[i]:>8.1%}"
        )
    lines.append(
        f"file growth x{series.file_growth_factor:.1f} (paper: ~5x); "
        f"dir growth x{series.dir_growth_factor:.1f} (paper: steady); "
        f"final dir share {series.final_dir_share:.1%} (paper: <10%)"
    )
    return "\n".join(lines)


def render_access(result: AccessPatternResult) -> str:
    """Figure 13: mean weekly breakdown."""
    f = result.mean_fractions()
    return (
        "weekly mean shares: "
        + "  ".join(f"{k}={v:.1%}" for k, v in f.items())
        + f"\nnew/readonly ratio = {result.new_to_readonly_ratio():.1f}x (paper: ~4x+)"
    )


def render_ages(result: FileAgeResult, every: int = 6) -> str:
    """Figure 16: average file age per snapshot."""
    lines = ["week      | mean age (d) | median age (d)"]
    for i in range(0, len(result.labels), every):
        lines.append(
            f"{result.labels[i]}  | {result.mean_age_days[i]:>11.1f} | "
            f"{result.median_age_days[i]:>13.1f}"
        )
    lines.append(
        f"snapshots with mean age > {result.purge_window_days}d purge window: "
        f"{result.fraction_over_window:.0%} (paper: 86%); "
        f"median of means {result.median_of_means:.0f}d (paper: 138d); "
        f"max {result.max_of_means:.0f}d (paper: 214d)"
    )
    return "\n".join(lines)


def render_burstiness(result: BurstinessResult) -> str:
    """Figure 17: write/read c_v five-number summaries per domain."""
    lines = [
        "Domain | write cv [min q1 med q3 max]          | read cv [min q1 med q3 max]",
        "-" * 92,
    ]
    codes = sorted(set(result.write_by_domain) | set(result.read_by_domain))
    for code in codes:
        w = result.write_by_domain.get(code)
        r = result.read_by_domain.get(code)
        wtxt = (
            f"{w['min']:.3f} {w['q1']:.3f} {w['median']:.3f} {w['q3']:.3f} {w['max']:.3f}"
            if w
            else "-"
        )
        rtxt = (
            f"{r['min']:.4f} {r['q1']:.4f} {r['median']:.4f} {r['q3']:.4f} {r['max']:.4f}"
            if r
            else "-"
        )
        lines.append(f"{code:<6} | {wtxt:<38} | {rtxt}")
    lines.append(f"write/read median gap = {result.read_write_gap():.0f}x (paper: ~100x)")
    return "\n".join(lines)


def render_degree(result: DegreeResult) -> str:
    """Figure 18(b)."""
    fit = result.fit
    return (
        f"degree power-law fit: alpha={fit.alpha:.2f} kmin={fit.kmin} "
        f"tail={fit.n_tail} KS={fit.ks_distance:.3f} "
        f"loglog-slope={fit.loglog_slope:.2f} "
        f"plausible={fit.plausibly_power_law}"
    )


def render_collaboration(result: CollaborationResult) -> str:
    """Figure 20."""
    lines = [
        f"user pairs: {result.n_possible_pairs:,} "
        f"(paper: ~0.93M); sharing a project: {result.n_sharing_pairs:,} "
        f"({result.sharing_fraction:.2%}, paper: ~1%)",
        "share of sharing pairs per domain (Figure 20):",
    ]
    for code, pct in sorted(
        result.domain_pair_share.items(), key=lambda kv: kv[1], reverse=True
    )[:12]:
        lines.append(f"  {code:<5} {pct:>6.2f}%")
    if result.extreme_pair:
        a, b, n = result.extreme_pair
        doms = ", ".join(f"{c}x{n2}" for c, n2 in result.extreme_pair_domains.items())
        lines.append(f"extreme pair: uids {a},{b} share {n} projects ({doms})")
    return "\n".join(lines)


def render_execution_stats(stats) -> str:
    """Execution-engine observability block (per-task timings, transport).

    Takes an :class:`~repro.query.engine.ExecutionStats` — the analysis
    suite's equivalent of the paper's Spark job metrics (§3, Figure 4).
    """
    lines = ["execution engine:"]
    lines.extend("  " + line for line in stats.summary().splitlines())
    return "\n".join(lines)


def series_to_csv(labels: list[str], columns: dict[str, np.ndarray]) -> str:
    """Generic CSV dump for plotting the figure series elsewhere."""
    header = "week," + ",".join(columns)
    lines = [header]
    for i, label in enumerate(labels):
        row = ",".join(str(columns[c][i]) for c in columns)
        lines.append(f"{label},{row}")
    return "\n".join(lines)
