"""Shared unique-row census — the fused pass's common substrate.

Six of the paper's analyses (Figures 7, 8a, 8b, 10, 11, 12, Table 2) start
from the same expensive gather: every ``(path_id, gid, uid, is_dir)`` row of
every snapshot, deduplicated to first appearance ("due to deleted files, the
aggregated count of unique files can be larger than the peak file count").
Running that gather once per analysis is exactly the namespace-rescanning
cost the Kernel protocol exists to remove, so it lives here as a single
:class:`~repro.query.engine.Kernel` whose result — a :class:`RowCensus` —
every consumer shares.

Dedup order matters for bit-exact equivalence with the per-analysis code
this replaces: the all-row, file-row, and dir-row censuses are deduplicated
*separately* (a path that flips between file and directory is attributed to
its first appearance of each kind, as the legacy per-analysis gathers did),
and partials are concatenated in snapshot order before ``np.unique``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.query.engine import Kernel
from repro.scan.snapshot import Snapshot

#: Canonical kernel name; consumers share one census per fused pass.
ROWS_KERNEL = "rows"


@dataclass(frozen=True)
class RowCensus:
    """First-seen ownership of every unique path across the window.

    ``pid``/``gid``/``uid``/``is_dir`` cover *all* rows; ``file_*`` and
    ``dir_*`` are the separate first-seen censuses over file rows and
    directory rows only.  All pid arrays are sorted ascending (the
    ``np.unique`` contract), with the companion arrays aligned to them.
    """

    pid: np.ndarray
    gid: np.ndarray
    uid: np.ndarray
    is_dir: np.ndarray
    file_pid: np.ndarray
    file_gid: np.ndarray
    dir_pid: np.ndarray
    dir_gid: np.ndarray

    @classmethod
    def empty(cls) -> "RowCensus":
        i64 = np.empty(0, dtype=np.int64)
        return cls(
            pid=i64,
            gid=i64,
            uid=i64,
            is_dir=np.empty(0, dtype=bool),
            file_pid=i64,
            file_gid=i64,
            dir_pid=i64,
            dir_gid=i64,
        )


def _map_rows(snapshot: Snapshot) -> tuple[np.ndarray, ...]:
    """One snapshot's raw ownership rows (worker side, no dedup yet)."""
    return (
        snapshot.path_id,
        snapshot.gid.astype(np.int64),
        snapshot.uid.astype(np.int64),
        snapshot.is_dir,
    )


def _first_seen(pid: np.ndarray, gid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    uniq, first = np.unique(pid, return_index=True)
    return uniq, gid[first]


def _reduce_rows(partials: list[tuple[np.ndarray, ...]]) -> RowCensus:
    if not partials:
        return RowCensus.empty()
    pid = np.concatenate([p[0] for p in partials])
    gid = np.concatenate([p[1] for p in partials])
    uid = np.concatenate([p[2] for p in partials])
    is_dir = np.concatenate([p[3] for p in partials])
    uniq, first = np.unique(pid, return_index=True)
    file_mask = ~is_dir
    file_pid, file_gid = _first_seen(pid[file_mask], gid[file_mask])
    dir_pid, dir_gid = _first_seen(pid[is_dir], gid[is_dir])
    return RowCensus(
        pid=uniq,
        gid=gid[first],
        uid=uid[first],
        is_dir=is_dir[first],
        file_pid=file_pid,
        file_gid=file_gid,
        dir_pid=dir_pid,
        dir_gid=dir_gid,
    )


def _merge_first_seen(
    pid: np.ndarray,
    companions: tuple[np.ndarray, ...],
    new_pid: np.ndarray,
    new_companions: tuple[np.ndarray, ...],
) -> tuple[np.ndarray, ...]:
    """Fold never-seen pids into a sorted first-seen census.

    First-seen semantics make the update trivial: rows whose pid is already
    in the census keep their original attribution, so only genuinely new
    pids (with their companion values) are inserted, re-sorted ascending.
    """
    fresh = ~np.isin(new_pid, pid, assume_unique=False)
    if not fresh.any():
        return (pid, *companions)
    merged_pid = np.concatenate([pid, new_pid[fresh]])
    order = np.argsort(merged_pid, kind="stable")
    out = [merged_pid[order]]
    for old, new in zip(companions, new_companions):
        out.append(np.concatenate([old, new[fresh]])[order])
    return tuple(out)


def _update_rows(state: RowCensus, delta) -> RowCensus:
    """Advance the census by one snapshot via its delta sidecar.

    Only rows that are new *to the snapshot* can be new to the census, so
    the candidates are exactly the delta's ``added`` rows plus the
    ``changed`` rows (a changed row can flip file↔dir, making an
    already-censused pid new to the file- or dir-specific census).
    """
    cand_pid = np.concatenate(
        [delta.added["path_id"], delta.changed_cur["path_id"]]
    )
    cand_gid = np.concatenate([delta.added["gid"], delta.changed_cur["gid"]])
    cand_uid = np.concatenate([delta.added["uid"], delta.changed_cur["uid"]])
    cand_dir = np.concatenate([delta.added_is_dir, delta.changed_is_dir])
    pid, gid, uid, is_dir = _merge_first_seen(
        state.pid,
        (state.gid, state.uid, state.is_dir),
        cand_pid,
        (cand_gid, cand_uid, cand_dir),
    )
    fmask = ~cand_dir
    file_pid, file_gid = _merge_first_seen(
        state.file_pid, (state.file_gid,), cand_pid[fmask], (cand_gid[fmask],)
    )
    dir_pid, dir_gid = _merge_first_seen(
        state.dir_pid, (state.dir_gid,), cand_pid[cand_dir], (cand_gid[cand_dir],)
    )
    return RowCensus(
        pid=pid,
        gid=gid,
        uid=uid,
        is_dir=is_dir,
        file_pid=file_pid,
        file_gid=file_gid,
        dir_pid=dir_pid,
        dir_gid=dir_gid,
    )


def rows_kernel() -> Kernel:
    """The shared census kernel (name ``"rows"``); safe to register from
    several analyses at once — fused runs dedupe it by name *and* the
    engine shares its single map evaluation per snapshot.

    Delta-capable: the kernel's state *is* the :class:`RowCensus` (the
    reduce result), and ``update`` folds one snapshot's delta sidecar into
    it under the first-seen rule, so appending snapshot N+1 to an analyzed
    archive costs O(|delta|) instead of O(namespace)."""
    return Kernel(
        name=ROWS_KERNEL,
        map_fn=_map_rows,
        reduce_fn=_reduce_rows,
        update_fn=_update_rows,
        partials_to_state=_reduce_rows,
        state_to_result=lambda state: state,
    )
