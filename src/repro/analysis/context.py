"""Shared analysis context.

Bundles what every analysis needs — the snapshot collection, the population
(standing in for OLCF's user-accounts database), a parallelism policy, and
memoized lookup tables (gid → domain id, uid → org/domain) in both dict and
columnar form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.query.parallel import Kernel, SnapshotExecutor
from repro.query.table import ColumnTable
from repro.scan.snapshot import Snapshot, SnapshotCollection
from repro.synth.domains import DOMAINS
from repro.synth.population import Population


@dataclass
class AnalysisContext:
    collection: SnapshotCollection
    population: Population
    executor: SnapshotExecutor = field(default_factory=lambda: SnapshotExecutor(1))
    #: optional checkpoint path (set by ``analyze_archive``'s resumable
    #: mode): consumed one-shot by the first kernel-bearing pass, so only
    #: the fused pass — which runs every kernel in one call — should set it
    checkpoint: object | None = None
    #: extra identity folded into the checkpoint fingerprint (e.g. the
    #: archive's config fingerprint); a journal written under a different
    #: fingerprint is discarded instead of trusted
    checkpoint_meta: dict = field(default_factory=dict)
    #: optional :class:`~repro.core.runcontrol.RunController` — threaded
    #: into every kernel pass so deadlines/signals interrupt gracefully
    controller: object | None = None
    #: per-snapshot circuit-breaker threshold (see
    #: :meth:`~repro.query.engine.ExecutionEngine.run_kernels`)
    max_task_failures: int | None = None
    #: optional :class:`~repro.query.engine.DeltaPlan` (set by
    #: ``analyze_archive``'s incremental mode): consumed one-shot by the
    #: first kernel-bearing pass, like ``checkpoint`` — only the fused pass
    #: should see it
    delta_plan: object | None = None

    # -- kernel execution ------------------------------------------------------

    def run_kernels(self, kernels: list[Kernel]) -> dict:
        """Run kernels in one fused pass over this context's collection.

        Every analysis routes its snapshot scans through here, so a single
        executor policy (and its stats) covers both the legacy one-kernel
        wrappers and the registry's fully fused pass.  If a ``checkpoint``
        path is attached, the first non-empty pass consumes it (one-shot)
        and becomes resumable: completed snapshots are journaled durably
        and restored on a rerun instead of re-executed.
        """
        journal = None
        if kernels and self.checkpoint is not None:
            from repro.query.journal import KernelJournal

            path, self.checkpoint = self.checkpoint, None
            journal = KernelJournal(
                path,
                kernels=[k.name for k in kernels],
                labels=list(self.collection.labels),
                fingerprint=self.checkpoint_meta,
            )
        plan = None
        if kernels and self.delta_plan is not None:
            plan, self.delta_plan = self.delta_plan, None
        return self.executor.run_kernels(
            self.collection,
            kernels,
            journal=journal,
            controller=self.controller,
            max_task_failures=self.max_task_failures,
            delta_plan=plan,
        )

    # -- execution observability ----------------------------------------------

    @property
    def execution_stats(self):
        """Lifetime :class:`~repro.query.engine.ExecutionStats` of the
        executor driving this suite (tasks, wall/busy time, bytes touched,
        downgrades).  Render with
        :func:`repro.analysis.report.render_execution_stats`."""
        return self.executor.stats

    # -- domain indexing -----------------------------------------------------

    @cached_property
    def domain_codes(self) -> list[str]:
        """Stable domain order (Table 1 alphabetical)."""
        return sorted(DOMAINS)

    @cached_property
    def domain_index(self) -> dict[str, int]:
        return {code: i for i, code in enumerate(self.domain_codes)}

    @cached_property
    def gid_to_domain_id(self) -> dict[int, int]:
        idx = self.domain_index
        return {
            gid: idx[p.domain] for gid, p in self.population.projects.items()
        }

    @cached_property
    def _gid_lookup(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted gid array + parallel domain-id array for vectorized maps."""
        gids = np.array(sorted(self.gid_to_domain_id), dtype=np.int64)
        dom = np.array(
            [self.gid_to_domain_id[int(g)] for g in gids], dtype=np.int64
        )
        return gids, dom

    def domain_ids_of_gids(self, gids: np.ndarray) -> np.ndarray:
        """Vectorized gid → domain-id map; unknown gids get -1."""
        table, dom = self._gid_lookup
        pos = np.searchsorted(table, gids)
        pos_clipped = np.clip(pos, 0, table.size - 1)
        out = dom[pos_clipped].copy()
        out[table[pos_clipped] != gids] = -1
        return out

    # -- dimension tables -----------------------------------------------------

    @cached_property
    def projects_table(self) -> ColumnTable:
        """gid / domain_id / n_users / core — the project dimension table."""
        gids = sorted(self.population.projects)
        rows = [self.population.projects[g] for g in gids]
        return ColumnTable(
            {
                "gid": np.array(gids, dtype=np.int64),
                "domain_id": np.array(
                    [self.domain_index[p.domain] for p in rows], dtype=np.int64
                ),
                "n_users": np.array([p.n_users for p in rows], dtype=np.int64),
                "core": np.array([p.core for p in rows], dtype=bool),
            }
        )

    @cached_property
    def accounts_table(self) -> ColumnTable:
        """uid / org type id / primary domain id — the accounts database."""
        uids = sorted(self.population.users)
        users = [self.population.users[u] for u in uids]
        orgs = sorted({u.org_type for u in users})
        self._org_names = orgs
        org_idx = {o: i for i, o in enumerate(orgs)}
        return ColumnTable(
            {
                "uid": np.array(uids, dtype=np.int64),
                "org_id": np.array(
                    [org_idx[u.org_type] for u in users], dtype=np.int64
                ),
                "domain_id": np.array(
                    [self.domain_index[u.primary_domain] for u in users],
                    dtype=np.int64,
                ),
            }
        )

    @property
    def org_names(self) -> list[str]:
        self.accounts_table  # ensure populated
        return self._org_names

    # -- snapshot-derived activity -------------------------------------------

    @cached_property
    def active_uids(self) -> np.ndarray:
        """UIDs observed owning at least one entry in any snapshot (§4.1.1)."""
        if len(self.collection) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(
            np.concatenate([np.unique(s.uid) for s in self.collection])
        ).astype(np.int64)

    @cached_property
    def active_gids(self) -> np.ndarray:
        if len(self.collection) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(
            np.concatenate([np.unique(s.gid) for s in self.collection])
        ).astype(np.int64)

    def files_only(self, snapshot: Snapshot) -> Snapshot:
        return snapshot.select(snapshot.is_file)

    @property
    def n_snapshots(self) -> int:
        return len(self.collection)
