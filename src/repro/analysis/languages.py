"""Programming-language popularity (Figures 11 and 12, §4.1.4).

Methodology follows the paper exactly: count files whose extension belongs
to a known language (``.c``/``.h`` → C, etc.) over all unique files, rank,
and compare with the IEEE Spectrum ranks.  The paper's quirks are inherited
deliberately — ``.pl`` counts as Prolog (inflating it, as the paper's rank-8
Prolog suggests), ``.d`` as the D language, ``.m`` as Matlab.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.analysis.rows import ROWS_KERNEL, RowCensus, rows_kernel
from repro.synth.languages import LANGUAGES, language_of_extension


@dataclass
class LanguageRanking:
    """Figure 11: language → (our rank, file count, IEEE rank)."""

    counts: dict[str, int]  # language → unique source files
    order: list[str]  # languages by our popularity, descending

    def rank_of(self, language: str) -> int | None:
        """1-based popularity rank in our counting, or None if unseen."""
        try:
            return self.order.index(language) + 1
        except ValueError:
            return None

    def ieee_rank_of(self, language: str) -> int | None:
        for spec in LANGUAGES:
            if spec.name == language:
                return spec.ieee_rank
        return None

    def rows(self, top_k: int = 30) -> list[tuple[str, int, int | None]]:
        """(language, file count, IEEE rank) rows, our order."""
        return [
            (lang, self.counts[lang], self.ieee_rank_of(lang))
            for lang in self.order[:top_k]
        ]


def _census_file_extension_ids(
    ctx: AnalysisContext, census: RowCensus
) -> tuple[np.ndarray, np.ndarray]:
    """(ext_id, domain_id) of every unique file, from the shared census."""
    return (
        ctx.collection.paths.ext_ids_of(census.file_pid),
        ctx.domain_ids_of_gids(census.file_gid),
    )


def ranking_from_census(
    ctx: AnalysisContext, census: RowCensus
) -> LanguageRanking:
    """Figure 11 from the shared unique-row census."""
    ext_ids, _ = _census_file_extension_ids(ctx, census)
    names = ctx.collection.paths.extensions.names
    ids, counts = np.unique(ext_ids, return_counts=True)
    lang_counts: dict[str, int] = {}
    for eid, cnt in zip(ids, counts):
        lang = language_of_extension(names[int(eid)])
        if lang is not None:
            lang_counts[lang] = lang_counts.get(lang, 0) + int(cnt)
    order = sorted(lang_counts, key=lambda k: lang_counts[k], reverse=True)
    return LanguageRanking(counts=lang_counts, order=order)


def language_ranking(ctx: AnalysisContext) -> LanguageRanking:
    """Figure 11: global language popularity by source-file count."""
    census = ctx.run_kernels([rows_kernel()])[ROWS_KERNEL]
    return ranking_from_census(ctx, census)


@dataclass
class DomainLanguages:
    """Figure 12: per-domain language share of source files."""

    shares: dict[str, dict[str, float]]  # domain → language → share

    def top(self, code: str, k: int = 2) -> list[str]:
        ranked = sorted(
            self.shares.get(code, {}).items(), key=lambda kv: kv[1], reverse=True
        )
        return [lang for lang, _ in ranked[:k]]


def domain_languages_from_census(
    ctx: AnalysisContext, census: RowCensus
) -> DomainLanguages:
    """Figure 12 from the shared unique-row census."""
    ext_ids, dom = _census_file_extension_ids(ctx, census)
    names = ctx.collection.paths.extensions.names
    shares: dict[str, dict[str, float]] = {}
    for code in ctx.domain_codes:
        mask = dom == ctx.domain_index[code]
        if not mask.any():
            continue
        ids, counts = np.unique(ext_ids[mask], return_counts=True)
        lang_counts: dict[str, int] = {}
        for eid, cnt in zip(ids, counts):
            lang = language_of_extension(names[int(eid)])
            if lang is not None:
                lang_counts[lang] = lang_counts.get(lang, 0) + int(cnt)
        total = sum(lang_counts.values())
        if total:
            shares[code] = {k: v / total for k, v in lang_counts.items()}
    return DomainLanguages(shares=shares)


def languages_by_domain(ctx: AnalysisContext) -> DomainLanguages:
    """Figure 12: language breakdown per science domain."""
    census = ctx.run_kernels([rows_kernel()])[ROWS_KERNEL]
    return domain_languages_from_census(ctx, census)
