"""Files-and-directories census (Figure 7, Figure 8(b), Observations 2–3).

All counts are over *unique paths accumulated across every snapshot*, the
paper's definition ("due to deleted files, the aggregated count of unique
files can be larger than the peak file count").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.analysis.rows import ROWS_KERNEL, RowCensus, rows_kernel
from repro.stats.cdf import Cdf, ecdf


@dataclass
class DomainEntryCounts:
    """Figure 7: unique files/directories per science domain."""

    files: dict[str, int]
    directories: dict[str, int]

    def total_entries(self, code: str) -> int:
        return self.files.get(code, 0) + self.directories.get(code, 0)

    def dir_ratio(self, code: str) -> float:
        """Directory share of a domain's entries (Figure 7(b))."""
        total = self.total_entries(code)
        return self.directories.get(code, 0) / total if total else 0.0

    @property
    def grand_total_files(self) -> int:
        return sum(self.files.values())

    @property
    def grand_total_directories(self) -> int:
        return sum(self.directories.values())

    @property
    def mean_dir_ratio(self) -> float:
        """Average directory share across domains (paper: ≈15%)."""
        ratios = [self.dir_ratio(c) for c in self.files]
        return float(np.mean(ratios)) if ratios else 0.0

    def domains_over(self, threshold: int) -> list[str]:
        """Domains exceeding ``threshold`` total entries (Observation 2)."""
        return sorted(
            c for c in self.files if self.total_entries(c) > threshold
        )


def entries_from_census(
    ctx: AnalysisContext, census: RowCensus
) -> DomainEntryCounts:
    """Figure 7 from the shared unique-row census.

    A path is attributed to the gid of its first appearance; ownership
    churn is negligible in scratch file systems and the paper makes the
    same single-owner assumption.
    """
    dom = ctx.domain_ids_of_gids(census.gid)
    is_dir = census.is_dir
    files: dict[str, int] = {}
    directories: dict[str, int] = {}
    for code in ctx.domain_codes:
        d = ctx.domain_index[code]
        mask = dom == d
        if mask.any():
            files[code] = int((mask & ~is_dir).sum())
            directories[code] = int((mask & is_dir).sum())
    return DomainEntryCounts(files=files, directories=directories)


def entries_by_domain(ctx: AnalysisContext) -> DomainEntryCounts:
    """Figure 7: unique file/dir counts per domain over the full window."""
    census = ctx.run_kernels([rows_kernel()])[ROWS_KERNEL]
    return entries_from_census(ctx, census)


@dataclass
class FileCountCdfs:
    """Figure 8(b): unique-file-count CDFs per user and per project."""

    per_user: Cdf
    per_project: Cdf
    median_user_files: float
    median_project_files: float
    max_user_files: int
    max_project_files: int
    top_domains_by_project_mean: list[tuple[str, float]]

    @property
    def project_to_user_ratio(self) -> float:
        """Median project files / median user files (paper: ≈10×)."""
        if self.median_user_files == 0:
            return float("inf")
        return self.median_project_files / self.median_user_files


def file_count_cdfs_from_census(
    ctx: AnalysisContext,
    census: RowCensus,
    exclude_stf_for_top: bool = True,
) -> FileCountCdfs:
    """Figure 8(b) from the shared unique-row census."""
    uid_f = census.uid[~census.is_dir]
    _, user_counts = np.unique(uid_f, return_counts=True)

    # each unique file is attributed to its first-seen gid
    proj_ids, proj_counts = np.unique(census.file_gid, return_counts=True)

    # top-five domains by mean files per project (§4.1.2)
    dom_of_proj = ctx.domain_ids_of_gids(proj_ids)
    means: list[tuple[str, float]] = []
    for code in ctx.domain_codes:
        if exclude_stf_for_top and code == "stf":
            continue
        mask = dom_of_proj == ctx.domain_index[code]
        if mask.any():
            means.append((code, float(proj_counts[mask].mean())))
    means.sort(key=lambda kv: kv[1], reverse=True)

    return FileCountCdfs(
        per_user=ecdf(user_counts),
        per_project=ecdf(proj_counts),
        median_user_files=float(np.median(user_counts)),
        median_project_files=float(np.median(proj_counts)),
        max_user_files=int(user_counts.max()) if user_counts.size else 0,
        max_project_files=int(proj_counts.max()) if proj_counts.size else 0,
        top_domains_by_project_mean=means[:5],
    )


def file_count_cdfs(
    ctx: AnalysisContext, exclude_stf_for_top: bool = True
) -> FileCountCdfs:
    """Figure 8(b) plus the Observation 3 medians and §4.1.2 top-five list."""
    census = ctx.run_kernels([rows_kernel()])[ROWS_KERNEL]
    return file_count_cdfs_from_census(ctx, census, exclude_stf_for_top)
