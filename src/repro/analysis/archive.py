"""Archive-tier analysis: ingest requirements and recall traffic (§1/§2.1).

The paper motivates its file-age study with operational questions about the
scratch↔archive boundary: "alleviate unnecessary data movement between the
scratch PFS and the archive ... or even drive archival storage ingest
requirements".  With the HPSS model enabled
(``SimulationConfig(enable_hpss=True)``) those quantities are measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.fs.clock import SECONDS_PER_DAY
from repro.fs.hpss import HpssArchive


@dataclass
class ArchiveTrafficResult:
    """Ingest/recall accounting for capacity planning."""

    weekly_ingest: np.ndarray
    total_ingested: int
    total_recalled: int
    final_holdings: int
    #: domain → recalled files (data wanted back after leaving scratch)
    recalls_by_domain: dict[str, int]

    @property
    def peak_weekly_ingest(self) -> int:
        return int(self.weekly_ingest.max()) if self.weekly_ingest.size else 0

    @property
    def mean_weekly_ingest(self) -> float:
        return float(self.weekly_ingest.mean()) if self.weekly_ingest.size else 0.0

    @property
    def recall_rate(self) -> float:
        """Share of archived files later recalled — the §1 'unnecessary
        data movement' when high, sensible insurance when low."""
        if self.total_ingested == 0:
            return 0.0
        return self.total_recalled / self.total_ingested


def archive_traffic(ctx: AnalysisContext, hpss: HpssArchive) -> ArchiveTrafficResult:
    """Aggregate the archive tier's transfer log per week and per domain."""
    if len(ctx.collection):
        origin = ctx.collection[0].timestamp - 7 * SECONDS_PER_DAY
        n_weeks = len(ctx.collection)
    else:
        origin, n_weeks = 0, 0
    weekly = hpss.weekly_ingest_series(origin, n_weeks)

    code_of = {i: c for c, i in ctx.domain_index.items()}
    recalls: dict[str, int] = {}
    for gid, count in hpss.recall_by_project().items():
        dom = ctx.gid_to_domain_id.get(gid)
        if dom is not None:
            code = code_of[dom]
            recalls[code] = recalls.get(code, 0) + count
    return ArchiveTrafficResult(
        weekly_ingest=weekly,
        total_ingested=hpss.traffic("ingest"),
        total_recalled=hpss.traffic("recall"),
        final_holdings=hpss.total_archived,
        recalls_by_domain=dict(sorted(recalls.items())),
    )


def render_archive_traffic(result: ArchiveTrafficResult) -> str:
    top_recalls = sorted(
        result.recalls_by_domain.items(), key=lambda kv: kv[1], reverse=True
    )[:6]
    lines = [
        f"ingest: {result.total_ingested:,} files total "
        f"(peak {result.peak_weekly_ingest:,}/week, "
        f"mean {result.mean_weekly_ingest:,.0f}/week)",
        f"holdings at end of window: {result.final_holdings:,} files",
        f"recalls: {result.total_recalled:,} files "
        f"({result.recall_rate:.0%} of ingested data wanted back on scratch)",
        "top recalling domains: "
        + (", ".join(f"{c} ({n:,})" for c, n in top_recalls) or "(none)"),
    ]
    return "\n".join(lines)
