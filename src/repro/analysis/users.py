"""User and project participation analysis (Figures 5 and 6, §4.1.1).

The paper identifies active users by gathering every UID present in any
snapshot, then joins against the user-accounts database for organization
type and science domain.  We do the same join against the synthetic
accounts table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.query.engine import Kernel
from repro.scan.snapshot import Snapshot
from repro.stats.cdf import Cdf, ecdf
from repro.stats.histogram import ratio_breakdown


@dataclass
class UserProfile:
    """Figure 5: the active-user census."""

    n_active: int
    n_registered_hint: int
    org_fractions: dict[str, float]  # Figure 5(a)
    domain_counts: dict[str, int]  # Figure 5(b)

    @property
    def domain_scientist_fraction(self) -> float:
        """Share of active users outside Computer Science (paper: >70%)."""
        total = sum(self.domain_counts.values())
        if total == 0:
            return 0.0
        return 1.0 - self.domain_counts.get("csc", 0) / total


def _map_active(snapshot: Snapshot) -> tuple[np.ndarray, np.ndarray]:
    return np.unique(snapshot.uid), np.unique(snapshot.gid)


def _reduce_active(
    partials: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    if not partials:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    uids = np.unique(np.concatenate([p[0] for p in partials])).astype(np.int64)
    gids = np.unique(np.concatenate([p[1] for p in partials])).astype(np.int64)
    return uids, gids


def _update_active(
    state: tuple[np.ndarray, np.ndarray], delta
) -> tuple[np.ndarray, np.ndarray]:
    """Fold one delta into the active-ID census.

    Unchanged rows carry the same owners as the previous snapshot (already
    in the census), so only ``added`` and ``changed`` current-side rows can
    introduce new UIDs/GIDs.
    """
    uids, gids = state
    new_uid = np.concatenate(
        [delta.added["uid"], delta.changed_cur["uid"]]
    ).astype(np.int64)
    new_gid = np.concatenate(
        [delta.added["gid"], delta.changed_cur["gid"]]
    ).astype(np.int64)
    return np.union1d(uids, new_uid), np.union1d(gids, new_gid)


def active_ids_kernel() -> Kernel:
    """UIDs/GIDs owning at least one entry in any snapshot (§4.1.1).

    Delta-capable: the census is a plain union, so ``update`` only has to
    union in the owners of added/changed rows."""
    return Kernel(
        name="active_ids",
        map_fn=_map_active,
        reduce_fn=_reduce_active,
        update_fn=_update_active,
        partials_to_state=_reduce_active,
        state_to_result=lambda state: state,
    )


def user_profile_from_active(
    ctx: AnalysisContext, active_uids: np.ndarray
) -> UserProfile:
    """Figure 5 from an already-gathered active-UID census."""
    accounts = ctx.population.accounts_table()
    active = [int(u) for u in active_uids if int(u) in accounts]
    org_counts: dict[str, int] = {}
    domain_counts: dict[str, int] = {}
    for uid in active:
        org, domain = accounts[uid]
        org_counts[org] = org_counts.get(org, 0) + 1
        domain_counts[domain] = domain_counts.get(domain, 0) + 1
    from repro.synth.domains import TOTAL_REGISTERED_USERS

    return UserProfile(
        n_active=len(active),
        n_registered_hint=TOTAL_REGISTERED_USERS,
        org_fractions=ratio_breakdown(org_counts),
        domain_counts=dict(sorted(domain_counts.items())),
    )


def user_profile(ctx: AnalysisContext) -> UserProfile:
    """Join active snapshot UIDs against the accounts database (Figure 5)."""
    active_uids, _ = ctx.run_kernels([active_ids_kernel()])["active_ids"]
    return user_profile_from_active(ctx, active_uids)


@dataclass
class ParticipationResult:
    """Figure 6: user ↔ project participation distributions."""

    projects_per_user: Cdf  # Figure 6(a)
    users_per_project: Cdf  # Figure 6(b)
    median_users_by_domain: dict[str, float]  # Figure 6(c)
    mean_users_per_project: float

    @property
    def multi_project_fraction(self) -> float:
        """Users in more than one project (paper: >60%... our shape check)."""
        return self.projects_per_user.tail_fraction(1.0)

    @property
    def heavy_user_fraction(self) -> float:
        """Users in eight or more projects (paper: ~2%)."""
        return self.projects_per_user.tail_fraction(7.0)


def participation(ctx: AnalysisContext) -> ParticipationResult:
    """Membership distributions from the affiliation data (Figure 6)."""
    users = ctx.population.users
    projects = ctx.population.projects
    ppu = np.array([u.n_projects for u in users.values() if u.n_projects > 0])
    upp = np.array([p.n_users for p in projects.values()])
    medians: dict[str, float] = {}
    for code in ctx.domain_codes:
        sizes = [p.n_users for p in projects.values() if p.domain == code]
        if sizes:
            medians[code] = float(np.median(sizes))
    return ParticipationResult(
        projects_per_user=ecdf(ppu),
        users_per_project=ecdf(upp),
        median_users_by_domain=medians,
        mean_users_per_project=float(upp.mean()),
    )
