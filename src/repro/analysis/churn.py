"""Hidden churn: what weekly snapshot diffs cannot see (§2.2 / §4.1.1).

The paper concedes two measurement gaps of snapshot-based analysis: files
created and deleted *between* scans never appear, and Spider II's lack of a
changelog makes the gap unmeasurable in production.  With the simulator's
optional changelog (:mod:`repro.fs.changelog`) the gap becomes measurable:
this module compares changelog ground truth against snapshot diffs per
interval — the quantified version of OLCF's changelog-vs-scan design
decision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fs.changelog import ChangeKind, Changelog
from repro.scan.snapshot import SnapshotCollection


@dataclass
class IntervalChurn:
    label: str
    visible_new: int  # new files the snapshot diff reports
    actual_created: int  # creations in the changelog for the interval
    hidden: int  # created AND deleted inside the interval

    @property
    def miss_rate(self) -> float:
        """Share of real creations the snapshot diff never observed."""
        if self.actual_created == 0:
            return 0.0
        return self.hidden / self.actual_created


@dataclass
class HiddenChurnResult:
    intervals: list[IntervalChurn]
    changelog_records: int
    changelog_bytes: int

    @property
    def total_hidden(self) -> int:
        return sum(i.hidden for i in self.intervals)

    @property
    def mean_miss_rate(self) -> float:
        rates = [i.miss_rate for i in self.intervals if i.actual_created > 0]
        return float(np.mean(rates)) if rates else 0.0

    def records_per_visible_file(self) -> float:
        """The overhead side of the trade-off: log records per file the
        snapshot pipeline would have caught anyway."""
        visible = sum(i.visible_new for i in self.intervals)
        return self.changelog_records / visible if visible else float("inf")


def hidden_churn(
    changelog: Changelog, collection: SnapshotCollection
) -> HiddenChurnResult:
    """Quantify the churn invisible to snapshot diffs, interval by interval."""
    intervals: list[IntervalChurn] = []
    for prev, cur in collection.pairs():
        # half-open after the first scan: events at exactly the previous
        # snapshot's timestamp were already visible in it
        start, end = prev.timestamp + 1, cur.timestamp + 1
        created, _ = changelog.events_between(start, end, {ChangeKind.CREATE})
        hidden = changelog.churned_inos(start, end)
        prev_files = prev.select(prev.is_file)
        cur_files = cur.select(cur.is_file)
        visible_new = int(cur_files.only_ids(prev_files).size)
        intervals.append(
            IntervalChurn(
                label=cur.label,
                visible_new=visible_new,
                actual_created=int(np.unique(created).size),
                hidden=int(hidden.size),
            )
        )
    return HiddenChurnResult(
        intervals=intervals,
        changelog_records=len(changelog),
        changelog_bytes=changelog.estimated_bytes(),
    )


def render_hidden_churn(result: HiddenChurnResult) -> str:
    lines = [
        f"changelog: {result.changelog_records:,} records "
        f"(~{result.changelog_bytes / 1e6:.1f} MB)",
        f"hidden churn: {result.total_hidden:,} files created AND deleted "
        f"between snapshots (mean miss rate {result.mean_miss_rate:.0%} of "
        "real creations)",
        f"overhead: {result.records_per_visible_file():.1f} changelog records "
        "per snapshot-visible new file",
    ]
    return "\n".join(lines)
