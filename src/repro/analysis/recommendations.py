"""Domain best-practice recommendations — the paper's first §5 outcome.

"Based on our analysis, the center has been able to quickly educate new
users and project allocations on the best practices within their science
domains in order to scale their application codes (e.g., stripe width use
prevalent in the project)."

Given the measured per-domain profiles, produce the onboarding brief a new
project allocation in a domain would receive: stripe-width norms, expected
namespace shape, format conventions, retention risk, and collaboration
contacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.burstiness import BurstinessResult
from repro.analysis.context import AnalysisContext
from repro.analysis.depth import DepthResult
from repro.analysis.extensions import DomainExtensions
from repro.analysis.files import DomainEntryCounts
from repro.analysis.network import ComponentResult
from repro.analysis.ost import StripeStats


@dataclass
class DomainBrief:
    """The onboarding brief for a new project in one science domain."""

    domain: str
    name: str
    #: stripe guidance: (typical, max seen) — "peers in your domain use..."
    stripe_typical: int
    stripe_max_seen: int
    stripe_advice: str
    #: namespace shape guidance
    expected_files_per_project: float
    typical_depth: float
    dir_share: float
    #: format conventions
    common_formats: list[str]
    #: operational risk: does this domain's data outlive the purge window?
    bursty_writer: bool
    #: community: how connected is this domain, who to talk to
    connectivity: float
    collaboration_advice: str


def _stripe_advice(typical: int, max_seen: int, default: int = 4) -> str:
    if max_seen <= default:
        advice = (
            "peers keep the default stripe count; tune only for files "
            "larger than a few GB"
        )
    elif max_seen >= 32:
        advice = (
            f"peers stripe large files up to {max_seen} OSTs — use "
            f"'lfs setstripe -c {min(max_seen, 64)}' on checkpoint "
            "directories for parallel I/O bandwidth"
        )
    else:
        advice = (
            f"peers moderately tune striping (up to {max_seen}); the "
            "default is fine for most output"
        )
    return advice


def _collaboration_advice(connectivity: float) -> str:
    if connectivity >= 0.7:
        return (
            "highly connected domain — most projects share members; ask "
            "the center for the domain's liaison contacts"
        )
    if connectivity >= 0.3:
        return (
            "moderately connected — several projects share software and "
            "data; worth a look at the domain's shared project areas"
        )
    return (
        "largely isolated domain — collaboration infrastructure (shared "
        "project areas, community formats) would be greenfield here"
    )


def domain_brief(
    ctx: AnalysisContext,
    code: str,
    stripes: StripeStats,
    counts: DomainEntryCounts,
    depths: DepthResult,
    extensions: dict[str, DomainExtensions],
    burst: BurstinessResult,
    components: ComponentResult,
) -> DomainBrief:
    """Assemble one domain's brief from the measured analyses."""
    from repro.synth.domains import DOMAINS

    spec = DOMAINS[code]
    stripe = stripes.by_domain.get(code, (4, 4.0, 4))
    typical = int(round(stripe[1]))
    n_projects = max(spec.n_projects, 1)
    files = counts.files.get(code, 0)
    depth_summary = depths.by_domain.get(code)
    ext = extensions.get(code)
    write_cv = burst.write_median(code)
    connectivity = components.domain_inclusion_prob.get(code, 0.0)

    return DomainBrief(
        domain=code,
        name=spec.name,
        stripe_typical=typical,
        stripe_max_seen=stripe[2],
        stripe_advice=_stripe_advice(typical, stripe[2]),
        expected_files_per_project=files / n_projects,
        typical_depth=depth_summary["median"] if depth_summary else 0.0,
        dir_share=counts.dir_ratio(code),
        common_formats=[e for e, _ in (ext.top[:3] if ext else [])],
        bursty_writer=(write_cv is not None and write_cv < 0.2),
        connectivity=connectivity,
        collaboration_advice=_collaboration_advice(connectivity),
    )


def all_domain_briefs(ctx: AnalysisContext) -> dict[str, DomainBrief]:
    """Briefs for every domain (runs the needed analyses once)."""
    from repro.analysis.burstiness import burstiness
    from repro.analysis.depth import directory_depths
    from repro.analysis.extensions import extensions_by_domain
    from repro.analysis.files import entries_by_domain
    from repro.analysis.network import build_network, component_analysis
    from repro.analysis.ost import stripe_stats

    stripes = stripe_stats(ctx)
    counts = entries_by_domain(ctx)
    depths = directory_depths(ctx)
    extensions = extensions_by_domain(ctx)
    burst = burstiness(ctx, min_files=10)
    network = build_network(ctx)
    components = component_analysis(ctx, network)
    return {
        code: domain_brief(
            ctx, code, stripes, counts, depths, extensions, burst, components
        )
        for code in ctx.domain_codes
        if code in counts.files
    }


def render_brief(brief: DomainBrief) -> str:
    formats = ", ".join(f".{e}" for e in brief.common_formats) or "(no convention)"
    lines = [
        f"=== onboarding brief: {brief.name} ({brief.domain}) ===",
        f"striping: typical {brief.stripe_typical}, max seen "
        f"{brief.stripe_max_seen} — {brief.stripe_advice}",
        f"namespace: expect ~{brief.expected_files_per_project:,.0f} files "
        f"per project, median depth {brief.typical_depth:.0f}, "
        f"{brief.dir_share:.0%} directories",
        f"formats in use: {formats}",
        "I/O style: "
        + (
            "bursty producer — consider burst-buffer staging"
            if brief.bursty_writer
            else "spread-out producer"
        ),
        f"community: {brief.connectivity:.0%} of projects in the main "
        f"collaboration component — {brief.collaboration_advice}",
    ]
    return "\n".join(lines)
