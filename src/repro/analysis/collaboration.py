"""User-pair collaboration (Figure 20, Table 1's Collab. column, §4.3.3).

A collaboration is a connected user–project–user triple: two users
affiliated with the same project.  The paper counts such subgraphs, reports
that only ≈1% of the ~0.93 M possible user pairs share any project, and
breaks the sharing pairs down by the domain of the shared project (Climate
Science leads, then Computer Science and Nuclear Fission).  The system
group (stf) is excluded from the network analysis per §4.3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.analysis.context import AnalysisContext


@dataclass
class CollaborationResult:
    n_users: int
    n_possible_pairs: int
    n_sharing_pairs: int
    #: Figure 20 / Table 1 Collab.: per domain, the share (%) of sharing
    #: pairs whose common ground includes a project of that domain.
    domain_pair_share: dict[str, float]
    #: the most collaborative pair: (uid, uid, n shared projects)
    extreme_pair: tuple[int, int, int] | None
    #: domains of the extreme pair's shared projects
    extreme_pair_domains: dict[str, int]

    @property
    def sharing_fraction(self) -> float:
        """Paper: ≈1% of all user pairs."""
        if self.n_possible_pairs == 0:
            return 0.0
        return self.n_sharing_pairs / self.n_possible_pairs

    def top_domains(self, k: int = 3) -> list[str]:
        ranked = sorted(
            self.domain_pair_share.items(), key=lambda kv: kv[1], reverse=True
        )
        return [code for code, _ in ranked[:k]]


@dataclass
class CollaborationGraphResult:
    """One-mode (user–user) view of the collaboration structure.

    The user projection of the file generation network: an edge per
    project-sharing user pair (its edge count independently cross-checks
    :func:`collaboration`'s pair enumeration), plus clustering — *do my
    collaborators collaborate with each other?* — overall and for the
    domains the paper singles out.
    """

    n_users: int
    n_edges: int
    mean_clustering: float
    clustering_by_domain: dict[str, float]
    #: strongest ties: (uid, uid, shared project count)
    top_ties: list[tuple[int, int, int]]


def collaboration_graph(
    ctx: AnalysisContext,
    exclude_domains: frozenset[str] = frozenset({"stf"}),
    max_domain_sample: int = 60,
) -> CollaborationGraphResult:
    """Project the bipartite network onto users and measure cohesion."""
    from repro.analysis.network import build_network
    from repro.graph.projection import mean_clustering, project_bipartite

    network = build_network(ctx, exclude_domains=exclude_domains)
    proj, weights = project_bipartite(network.graph, network.n_users)

    rng = np.random.default_rng(0)
    overall_sample = rng.choice(
        proj.n, size=min(proj.n, 300), replace=False
    )
    by_domain: dict[str, float] = {}
    uid_domain = {
        uid: u.primary_domain for uid, u in ctx.population.users.items()
    }
    for code in ("cli", "csc", "nfi", "bip", "mat"):
        members = np.array(
            [
                i
                for i, uid in enumerate(network.uids)
                if uid_domain.get(int(uid)) == code
            ]
        )
        if members.size >= 3:
            if members.size > max_domain_sample:
                members = rng.choice(members, size=max_domain_sample, replace=False)
            by_domain[code] = mean_clustering(proj, members)

    ranked = sorted(weights.items(), key=lambda kv: kv[1], reverse=True)[:5]
    top_ties = [
        (int(network.uids[a]), int(network.uids[b]), int(w))
        for (a, b), w in ranked
    ]
    return CollaborationGraphResult(
        n_users=proj.n,
        n_edges=proj.n_edges,
        mean_clustering=mean_clustering(proj, overall_sample),
        clustering_by_domain=by_domain,
        top_ties=top_ties,
    )


def collaboration(
    ctx: AnalysisContext, exclude_domains: frozenset[str] = frozenset({"stf"})
) -> CollaborationResult:
    """Count user-project-user triples over the affiliation data."""
    population = ctx.population
    pair_projects: dict[tuple[int, int], list[int]] = {}
    for project in population.projects.values():
        if project.domain in exclude_domains:
            continue
        members = sorted(set(project.members))
        for a, b in combinations(members, 2):
            pair_projects.setdefault((a, b), []).append(project.gid)

    n_users = len(population.users)
    n_possible = n_users * (n_users - 1) // 2

    domain_of = population.domain_of_gid()
    pair_hits: dict[str, int] = {code: 0 for code in ctx.domain_codes}
    extreme: tuple[int, int, int] | None = None
    extreme_domains: dict[str, int] = {}
    for (a, b), gids in pair_projects.items():
        seen = {domain_of[g] for g in gids}
        for code in seen:
            pair_hits[code] += 1
        if extreme is None or len(gids) > extreme[2]:
            extreme = (a, b, len(gids))
            extreme_domains = {}
            for g in gids:
                code = domain_of[g]
                extreme_domains[code] = extreme_domains.get(code, 0) + 1

    n_sharing = len(pair_projects)
    share = {
        code: (100.0 * hits / n_sharing if n_sharing else 0.0)
        for code, hits in pair_hits.items()
        if code not in exclude_domains
    }
    return CollaborationResult(
        n_users=n_users,
        n_possible_pairs=n_possible,
        n_sharing_pairs=n_sharing,
        domain_pair_share=share,
        extreme_pair=extreme,
        extreme_pair_domains=extreme_domains,
    )
