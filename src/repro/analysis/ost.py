"""OST stripe-count analysis (Figure 14, Observation 6, §4.2.1)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext


@dataclass
class StripeStats:
    """Per-domain min / mean / max stripe counts over all file rows."""

    by_domain: dict[str, tuple[int, float, int]]
    default_stripe: int = 4

    def tuned_domains(self) -> list[str]:
        """Domains whose stripe counts deviate from the default anywhere."""
        return sorted(
            code
            for code, (lo, _, hi) in self.by_domain.items()
            if lo != self.default_stripe or hi != self.default_stripe
        )

    def untouched_domains(self) -> list[str]:
        """Domains that never left the default (paper: 11 of 35)."""
        return sorted(
            code
            for code, (lo, _, hi) in self.by_domain.items()
            if lo == self.default_stripe and hi == self.default_stripe
        )

    @property
    def max_observed(self) -> int:
        return max((hi for _, _, hi in self.by_domain.values()), default=0)


def stripe_stats(ctx: AnalysisContext) -> StripeStats:
    """Figure 14: min/avg/max OST counts per domain, over all snapshots.

    Pools every file row from every snapshot (a file present across many
    weeks counts each week, like the paper's "OST counts of files from all
    snapshots").
    """
    by_domain: dict[str, list[np.ndarray]] = {c: [] for c in ctx.domain_codes}
    for snap in ctx.collection:
        mask = snap.is_file
        dom = ctx.domain_ids_of_gids(snap.gid[mask].astype(np.int64))
        stripes = snap.stripe_count[mask]
        for code in ctx.domain_codes:
            sel = dom == ctx.domain_index[code]
            if sel.any():
                by_domain[code].append(stripes[sel])
    out: dict[str, tuple[int, float, int]] = {}
    for code, chunks in by_domain.items():
        if not chunks:
            continue
        allv = np.concatenate(chunks)
        out[code] = (int(allv.min()), float(allv.mean()), int(allv.max()))
    return StripeStats(by_domain=out)
