"""OST stripe-count analysis (Figure 14, Observation 6, §4.2.1)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.query.engine import Kernel
from repro.scan.snapshot import Snapshot


@dataclass
class StripeStats:
    """Per-domain min / mean / max stripe counts over all file rows."""

    by_domain: dict[str, tuple[int, float, int]]
    default_stripe: int = 4

    def tuned_domains(self) -> list[str]:
        """Domains whose stripe counts deviate from the default anywhere."""
        return sorted(
            code
            for code, (lo, _, hi) in self.by_domain.items()
            if lo != self.default_stripe or hi != self.default_stripe
        )

    def untouched_domains(self) -> list[str]:
        """Domains that never left the default (paper: 11 of 35)."""
        return sorted(
            code
            for code, (lo, _, hi) in self.by_domain.items()
            if lo == self.default_stripe and hi == self.default_stripe
        )

    @property
    def max_observed(self) -> int:
        return max((hi for _, _, hi in self.by_domain.values()), default=0)


def _map_stripes(snapshot: Snapshot) -> tuple[np.ndarray, np.ndarray]:
    mask = snapshot.is_file
    return (
        snapshot.gid[mask].astype(np.int64),
        snapshot.stripe_count[mask],
    )


def stripes_kernel(ctx: AnalysisContext) -> Kernel:
    """Figure 14 as a kernel: per-snapshot (gid, stripe) file rows."""

    def reduce_stripes(
        rows: list[tuple[np.ndarray, np.ndarray]],
    ) -> StripeStats:
        by_domain: dict[str, list[np.ndarray]] = {
            c: [] for c in ctx.domain_codes
        }
        for gids, stripes in rows:
            dom = ctx.domain_ids_of_gids(gids)
            for code in ctx.domain_codes:
                sel = dom == ctx.domain_index[code]
                if sel.any():
                    by_domain[code].append(stripes[sel])
        out: dict[str, tuple[int, float, int]] = {}
        for code, chunks in by_domain.items():
            if not chunks:
                continue
            allv = np.concatenate(chunks)
            out[code] = (int(allv.min()), float(allv.mean()), int(allv.max()))
        return StripeStats(by_domain=out)

    return Kernel(name="stripes", map_fn=_map_stripes, reduce_fn=reduce_stripes)


def stripe_stats(ctx: AnalysisContext) -> StripeStats:
    """Figure 14: min/avg/max OST counts per domain, over all snapshots.

    Pools every file row from every snapshot (a file present across many
    weeks counts each week, like the paper's "OST counts of files from all
    snapshots").
    """
    return ctx.run_kernels([stripes_kernel(ctx)])["stripes"]
