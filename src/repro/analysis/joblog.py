"""Combined job-log + file-metadata analysis (§7's future work, realized).

The paper closes by predicting that "combining multiple system logs (e.g.,
job logs) and publication data will allow more interesting insights".
With the scheduler log the simulation can emit
(``SimulationConfig(collect_job_log=True)``), three such insights become
measurable:

* **job/file-production correlation** — per (project, week), do more
  compute jobs mean more files?  (They should: sessions produce both.)
* **workflow chains** — the §3 motif "a simulation run followed by data
  analyses or visualization tasks": analysis jobs of a project arriving
  within a follow-up window of a simulation job;
* **compute-vs-storage footprint** — node-seconds vs files produced per
  domain, separating compute-bound from output-bound communities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.fs.clock import SECONDS_PER_DAY
from repro.synth.joblog import JobKind, JobLog


@dataclass
class JobFileCorrelation:
    """Per-(project, week) job counts vs new-file counts."""

    n_cells: int
    pearson_r: float
    jobs_total: int
    files_total: int

    @property
    def correlated(self) -> bool:
        return self.pearson_r > 0.3


def job_file_correlation(ctx: AnalysisContext, job_log: JobLog) -> JobFileCorrelation:
    """Correlate weekly job activity with weekly file production per project."""
    jobs = job_log.to_table()
    if len(ctx.collection) < 2 or jobs.n_rows == 0:
        return JobFileCorrelation(0, float("nan"), jobs.n_rows, 0)

    week_len = 7 * SECONDS_PER_DAY
    origin = ctx.collection[0].timestamp - week_len

    # jobs per (gid, week)
    week_of_job = ((jobs["start"] - origin) // week_len).astype(np.int64)
    job_cells: dict[tuple[int, int], int] = {}
    for gid, week in zip(jobs["gid"], week_of_job):
        key = (int(gid), int(week))
        job_cells[key] = job_cells.get(key, 0) + 1

    # new files per (gid, week) from snapshot diffs
    file_cells: dict[tuple[int, int], int] = {}
    files_total = 0
    for week_idx, (prev, cur) in enumerate(ctx.collection.pairs()):
        prev_files = prev.select(prev.is_file)
        cur_files = cur.select(cur.is_file)
        new_ids = cur_files.only_ids(prev_files)
        rows = cur_files.rows_for(new_ids)
        gids, counts = np.unique(cur_files.gid[rows], return_counts=True)
        for gid, count in zip(gids, counts):
            file_cells[(int(gid), week_idx + 1)] = int(count)
            files_total += int(count)

    keys = sorted(set(job_cells) | set(file_cells))
    if len(keys) < 3:
        return JobFileCorrelation(len(keys), float("nan"), jobs.n_rows, files_total)
    x = np.array([job_cells.get(k, 0) for k in keys], dtype=np.float64)
    y = np.array([file_cells.get(k, 0) for k in keys], dtype=np.float64)
    if x.std() == 0 or y.std() == 0:
        r = float("nan")
    else:
        r = float(np.corrcoef(x, y)[0, 1])
    return JobFileCorrelation(
        n_cells=len(keys), pearson_r=r, jobs_total=jobs.n_rows,
        files_total=files_total,
    )


@dataclass
class WorkflowChains:
    """Simulation → analysis follow-ups (the paper's workflow motif)."""

    n_simulation_jobs: int
    n_analysis_jobs: int
    n_chained: int  # analysis jobs within the window of a prior simulation
    window_days: float

    @property
    def chain_fraction(self) -> float:
        """Share of analysis jobs that follow a simulation of the same
        project within the window."""
        if self.n_analysis_jobs == 0:
            return 0.0
        return self.n_chained / self.n_analysis_jobs


def workflow_chains(job_log: JobLog, window_days: float = 14.0) -> WorkflowChains:
    """Count analysis jobs chained to a prior simulation job of the same gid."""
    jobs = job_log.to_table()
    sim_kind = JobKind.SIMULATION.value
    ana_kind = JobKind.ANALYSIS.value
    window = int(window_days * SECONDS_PER_DAY)

    sims_by_gid: dict[int, np.ndarray] = {}
    sims = jobs.filter(jobs["kind"] == sim_kind)
    for gid in np.unique(sims["gid"]):
        mask = sims["gid"] == gid
        sims_by_gid[int(gid)] = np.sort(sims["end"][mask])

    analyses = jobs.filter(jobs["kind"] == ana_kind)
    chained = 0
    for gid, start in zip(analyses["gid"], analyses["start"]):
        ends = sims_by_gid.get(int(gid))
        if ends is None:
            continue
        idx = int(np.searchsorted(ends, start, side="right")) - 1
        if idx >= 0 and start - ends[idx] <= window:
            chained += 1
    return WorkflowChains(
        n_simulation_jobs=sims.n_rows,
        n_analysis_jobs=analyses.n_rows,
        n_chained=chained,
        window_days=window_days,
    )


@dataclass
class ComputeStorageFootprint:
    """node-seconds vs files produced per domain."""

    #: domain → (node_seconds, files, files per kilo-node-second)
    by_domain: dict[str, tuple[int, int, float]]

    def output_bound(self, k: int = 5) -> list[str]:
        """Domains producing the most files per unit of compute."""
        ranked = sorted(
            self.by_domain.items(), key=lambda kv: kv[1][2], reverse=True
        )
        return [code for code, _ in ranked[:k]]


def compute_storage_footprint(
    ctx: AnalysisContext, job_log: JobLog
) -> ComputeStorageFootprint:
    jobs = job_log.to_table()
    node_seconds: dict[str, int] = {}
    if jobs.n_rows:
        runtime = (jobs["end"] - jobs["start"]) * jobs["nodes"]
        dom = ctx.domain_ids_of_gids(jobs["gid"].astype(np.int64))
        for code in ctx.domain_codes:
            mask = dom == ctx.domain_index[code]
            if mask.any():
                node_seconds[code] = int(runtime[mask].sum())

    # unique files per domain over the whole window
    from repro.analysis.files import entries_by_domain

    counts = entries_by_domain(ctx)
    out: dict[str, tuple[int, int, float]] = {}
    for code, ns in node_seconds.items():
        files = counts.files.get(code, 0)
        rate = 1000.0 * files / ns if ns else 0.0
        out[code] = (ns, files, rate)
    return ComputeStorageFootprint(by_domain=out)


def render_joblog(
    correlation: JobFileCorrelation,
    chains: WorkflowChains,
    footprint: ComputeStorageFootprint,
) -> str:
    lines = [
        f"job/file correlation over {correlation.n_cells:,} (project, week) "
        f"cells: pearson r = {correlation.pearson_r:.2f} "
        f"({correlation.jobs_total:,} jobs, {correlation.files_total:,} new files)",
        f"workflow chains: {chains.n_chained:,} of {chains.n_analysis_jobs:,} "
        f"analysis jobs follow a simulation of the same project within "
        f"{chains.window_days:.0f} days ({chains.chain_fraction:.0%})",
        "most output-bound domains (files per kilo-node-second): "
        + ", ".join(footprint.output_bound(5)),
    ]
    return "\n".join(lines)
