"""Declarative registry of the §4 analyses — the fused pass's wiring.

Each :class:`AnalysisSpec` names one paper artifact, the kernels it needs,
and a parent-side ``finalize`` that turns kernel results into the report's
result objects.  :func:`run_analyses` either

* **fused** (the default): collects every selected spec's kernels, dedupes
  them by name (six analyses share the ``rows`` census, and the engine
  additionally shares map evaluations), and runs them all in **one**
  pass over the snapshot collection; or
* **legacy passes**: runs each spec's kernels in its own pass, reproducing
  the old one-pass-per-analysis behavior for ablation.

Population-only analyses (participation, the file generation network,
collaboration) have no kernels — their finalizers never touch a snapshot.
Specs may ``require`` other specs (Table 1 assembles eight of them);
:func:`resolve_specs` expands requirements transitively and keeps the
declaration order, which is a valid topological order by construction.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.analysis.access import access_kernel, ages_kernel
from repro.analysis.burstiness import burstiness_kernel
from repro.analysis.collaboration import collaboration
from repro.analysis.context import AnalysisContext
from repro.analysis.depth import depths_from_census
from repro.analysis.extensions import (
    ext_hist_kernel,
    extensions_from_census,
    trend_from_census,
)
from repro.analysis.files import entries_from_census, file_count_cdfs_from_census
from repro.analysis.growth import growth_kernel
from repro.analysis.languages import (
    domain_languages_from_census,
    ranking_from_census,
)
from repro.analysis.network import (
    build_network,
    component_analysis,
    degree_distribution,
)
from repro.analysis.ost import stripes_kernel
from repro.analysis.rows import ROWS_KERNEL, rows_kernel
from repro.analysis.table1 import assemble_table1
from repro.analysis.users import (
    active_ids_kernel,
    participation,
    user_profile_from_active,
)
from repro.query.engine import Kernel


@dataclass
class AnalyzeOptions:
    """Everything an analysis finalizer may need besides kernel results."""

    ctx: AnalysisContext
    scan_history: list | None = None
    purge_window_days: int = 90
    burstiness_min_files: int = 10


@dataclass(frozen=True)
class AnalysisSpec:
    """One selectable analysis: its kernels plus a parent-side finalizer.

    ``finalize(opts, kernel_results, values)`` returns ``{field: result}``
    for the :class:`~repro.core.pipeline.PaperReport` fields in ``fields``;
    ``values`` holds the fields of already-finalized specs (``requires``
    guarantees they ran first).
    """

    name: str
    fields: tuple[str, ...]
    build_kernels: Callable[[AnalyzeOptions], list[Kernel]]
    finalize: Callable[[AnalyzeOptions, dict[str, Any], dict[str, Any]], dict[str, Any]]
    requires: tuple[str, ...] = ()


def _no_kernels(opts: AnalyzeOptions) -> list[Kernel]:
    return []


def _finalize_users(opts, kres, values):
    active_uids, _ = kres["active_ids"]
    return {"fig5": user_profile_from_active(opts.ctx, active_uids)}


def _finalize_participation(opts, kres, values):
    return {"fig6": participation(opts.ctx)}


def _finalize_census(opts, kres, values):
    return {"fig7": entries_from_census(opts.ctx, kres[ROWS_KERNEL])}


def _finalize_cdfs(opts, kres, values):
    return {"fig8": file_count_cdfs_from_census(opts.ctx, kres[ROWS_KERNEL])}


def _finalize_depth(opts, kres, values):
    return {"fig8_depth": depths_from_census(opts.ctx, kres[ROWS_KERNEL])}


def _finalize_extensions(opts, kres, values):
    return {"table2": extensions_from_census(opts.ctx, kres[ROWS_KERNEL])}


def _finalize_ext_trend(opts, kres, values):
    return {
        "fig10": trend_from_census(
            opts.ctx, kres[ROWS_KERNEL], kres["ext_hist"]
        )
    }


def _finalize_languages(opts, kres, values):
    census = kres[ROWS_KERNEL]
    return {
        "fig11": ranking_from_census(opts.ctx, census),
        "fig12": domain_languages_from_census(opts.ctx, census),
    }


def _finalize_network(opts, kres, values):
    network = build_network(opts.ctx)
    return {
        "table3": component_analysis(opts.ctx, network),
        "fig18": degree_distribution(network),
    }


def _finalize_collaboration(opts, kres, values):
    return {"fig20": collaboration(opts.ctx)}


def _finalize_table1(opts, kres, values):
    return {
        "table1": assemble_table1(
            opts.ctx,
            entries=values["fig7"],
            depths=values["fig8_depth"],
            exts=values["table2"],
            langs=values["fig12"],
            stripes=values["fig14"],
            cv=values["fig17"],
            comp=values["table3"],
            collab=values["fig20"],
        )
    }


def _result(kernel_name: str, f: str):
    def finalize(opts, kres, values):
        return {f: kres[kernel_name]}

    return finalize


#: Declaration order is a valid topological order (requires come first).
SPECS: dict[str, AnalysisSpec] = {
    spec.name: spec
    for spec in [
        AnalysisSpec(
            name="users",
            fields=("fig5",),
            build_kernels=lambda opts: [active_ids_kernel()],
            finalize=_finalize_users,
        ),
        AnalysisSpec(
            name="participation",
            fields=("fig6",),
            build_kernels=_no_kernels,
            finalize=_finalize_participation,
        ),
        AnalysisSpec(
            name="census",
            fields=("fig7",),
            build_kernels=lambda opts: [rows_kernel()],
            finalize=_finalize_census,
        ),
        AnalysisSpec(
            name="cdfs",
            fields=("fig8",),
            build_kernels=lambda opts: [rows_kernel()],
            finalize=_finalize_cdfs,
        ),
        AnalysisSpec(
            name="depth",
            fields=("fig8_depth",),
            build_kernels=lambda opts: [rows_kernel()],
            finalize=_finalize_depth,
        ),
        AnalysisSpec(
            name="extensions",
            fields=("table2",),
            build_kernels=lambda opts: [rows_kernel()],
            finalize=_finalize_extensions,
        ),
        AnalysisSpec(
            name="ext_trend",
            fields=("fig10",),
            build_kernels=lambda opts: [rows_kernel(), ext_hist_kernel()],
            finalize=_finalize_ext_trend,
        ),
        AnalysisSpec(
            name="languages",
            fields=("fig11", "fig12"),
            build_kernels=lambda opts: [rows_kernel()],
            finalize=_finalize_languages,
        ),
        AnalysisSpec(
            name="access",
            fields=("fig13",),
            build_kernels=lambda opts: [access_kernel()],
            finalize=_result("access", "fig13"),
        ),
        AnalysisSpec(
            name="ost",
            fields=("fig14",),
            build_kernels=lambda opts: [stripes_kernel(opts.ctx)],
            finalize=_result("stripes", "fig14"),
        ),
        AnalysisSpec(
            name="growth",
            fields=("fig15",),
            build_kernels=lambda opts: [growth_kernel(opts.scan_history)],
            finalize=_result("growth", "fig15"),
        ),
        AnalysisSpec(
            name="ages",
            fields=("fig16",),
            build_kernels=lambda opts: [ages_kernel(opts.purge_window_days)],
            finalize=_result("ages", "fig16"),
        ),
        AnalysisSpec(
            name="burstiness",
            fields=("fig17",),
            build_kernels=lambda opts: [
                burstiness_kernel(opts.ctx, opts.burstiness_min_files)
            ],
            finalize=_result("burstiness", "fig17"),
        ),
        AnalysisSpec(
            name="network",
            fields=("table3", "fig18"),
            build_kernels=_no_kernels,
            finalize=_finalize_network,
        ),
        AnalysisSpec(
            name="collaboration",
            fields=("fig20",),
            build_kernels=_no_kernels,
            finalize=_finalize_collaboration,
        ),
        AnalysisSpec(
            name="table1",
            fields=("table1",),
            build_kernels=_no_kernels,
            finalize=_finalize_table1,
            requires=(
                "census",
                "depth",
                "extensions",
                "languages",
                "ost",
                "burstiness",
                "network",
                "collaboration",
            ),
        ),
    ]
}


def resolve_specs(
    analyses: Sequence[str] | str | None = None,
) -> list[AnalysisSpec]:
    """Selected specs plus their transitive requirements, registry order.

    ``analyses`` may be None / ``"all"`` (everything), a comma-separated
    string (the CLI form), or a sequence of spec names.
    """
    if analyses is None or analyses == "all":
        return list(SPECS.values())
    if isinstance(analyses, str):
        analyses = [a.strip() for a in analyses.split(",") if a.strip()]
    unknown = sorted(set(analyses) - set(SPECS))
    if unknown:
        raise ValueError(
            f"unknown analyses {unknown}; available: {sorted(SPECS)}"
        )
    wanted = set(analyses)
    frontier = list(wanted)
    while frontier:
        spec = SPECS[frontier.pop()]
        for dep in spec.requires:
            if dep not in wanted:
                wanted.add(dep)
                frontier.append(dep)
    return [spec for spec in SPECS.values() if spec.name in wanted]


def run_analyses(
    opts: AnalyzeOptions,
    specs: Sequence[AnalysisSpec],
    fused: bool = True,
) -> dict[str, Any]:
    """Run the selected specs; returns ``{report field: result object}``.

    ``fused=True`` executes the union of all specs' kernels (deduped by
    name) in one pass over the collection; ``fused=False`` gives every
    spec its own pass — the legacy behavior, kept for ablation.
    """
    values: dict[str, Any] = {}
    if fused:
        kernels: dict[str, Kernel] = {}
        for spec in specs:
            for kernel in spec.build_kernels(opts):
                kernels.setdefault(kernel.name, kernel)
        kres = (
            opts.ctx.run_kernels(list(kernels.values())) if kernels else {}
        )
        for spec in specs:
            values.update(spec.finalize(opts, kres, values))
    else:
        for spec in specs:
            spec_kernels = spec.build_kernels(opts)
            kres = opts.ctx.run_kernels(spec_kernels) if spec_kernels else {}
            values.update(spec.finalize(opts, kres, values))
    return values
