"""The file generation network (§4.3: Figure 18, Table 3, Figure 19).

Users and projects are vertices; an edge connects a user to every project
they participate in (the paper builds this from the affiliation data behind
the snapshots).  All graph algorithms come from :mod:`repro.graph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.graph.centrality import betweenness_centrality, closeness_centrality
from repro.graph.components import ConnectedComponents, connected_components
from repro.graph.core import Graph
from repro.graph.traversal import exact_diameter, radius_from
from repro.stats.powerlaw import PowerLawFit, fit_power_law


@dataclass
class FileGenerationNetwork:
    """The bipartite user–project graph with its label tables."""

    graph: Graph = field(repr=False)
    uids: np.ndarray = field(repr=False)  # vertex i < n_users ↔ uids[i]
    gids: np.ndarray = field(repr=False)  # vertex n_users + j ↔ gids[j]

    @property
    def n_users(self) -> int:
        return int(self.uids.size)

    @property
    def n_projects(self) -> int:
        return int(self.gids.size)

    def is_user_vertex(self, v: int) -> bool:
        return v < self.n_users

    def vertex_of_gid(self, gid: int) -> int:
        return self.n_users + int(np.searchsorted(self.gids, gid))

    def label(self, v: int) -> tuple[str, int]:
        """("user", uid) or ("project", gid)."""
        if v < self.n_users:
            return ("user", int(self.uids[v]))
        return ("project", int(self.gids[v - self.n_users]))


def build_network(
    ctx: AnalysisContext, exclude_domains: frozenset[str] = frozenset()
) -> FileGenerationNetwork:
    """Construct the graph from the population's affiliations."""
    population = ctx.population
    skip_gids = {
        gid
        for gid, p in population.projects.items()
        if p.domain in exclude_domains
    }
    uids = np.array(sorted(population.users), dtype=np.int64)
    gids = np.array(
        sorted(g for g in population.projects if g not in skip_gids),
        dtype=np.int64,
    )
    uidx = {int(u): i for i, u in enumerate(uids)}
    gidx = {int(g): uids.size + j for j, g in enumerate(gids)}
    edges = [
        (uidx[uid], gidx[gid])
        for uid, user in population.users.items()
        for gid in user.projects
        if gid in gidx
    ]
    graph = Graph.from_edges(
        uids.size + gids.size, np.array(edges, dtype=np.int64).reshape(-1, 2)
    )
    return FileGenerationNetwork(graph=graph, uids=uids, gids=gids)


@dataclass
class DegreeResult:
    """Figure 18(b): the degree distribution and its power-law fit."""

    degrees: np.ndarray
    fit: PowerLawFit

    @property
    def follows_power_law(self) -> bool:
        return self.fit.plausibly_power_law


def degree_distribution(network: FileGenerationNetwork) -> DegreeResult:
    degrees = network.graph.degree()
    positive = degrees[degrees > 0]
    return DegreeResult(degrees=degrees, fit=fit_power_law(positive))


@dataclass
class ComponentResult:
    """Table 3 + Figure 19 + the §4.3.2 centrality findings."""

    components: ConnectedComponents
    largest_users: int
    largest_projects: int
    diameter: int
    #: Figure 19(a): share of the largest component's projects per domain.
    domain_share_of_largest: dict[str, float]
    #: Figure 19(b): P(project in largest component) per domain.
    domain_inclusion_prob: dict[str, float]
    #: top central vertices [(kind, id, closeness)] in the largest component
    central_entities: list[tuple[str, int, float]]
    #: hops needed to reach the whole component from the central entities
    central_radius: int

    @property
    def size_distribution(self) -> dict[int, int]:
        return self.components.size_distribution()

    @property
    def coverage(self) -> float:
        return self.components.coverage()


def component_analysis(
    ctx: AnalysisContext,
    network: FileGenerationNetwork,
    n_central: int = 12,
) -> ComponentResult:
    """Connected components, diameter, and centrality of the largest CC."""
    cc = connected_components(network.graph)
    members = cc.largest_members()
    sub, verts = network.graph.subgraph(members)
    diameter = exact_diameter(sub)

    user_members = members[members < network.n_users]
    project_members = members[members >= network.n_users]
    member_gids = network.gids[project_members - network.n_users]

    # Figure 19: domain composition / inclusion probabilities
    dom_ids = ctx.domain_ids_of_gids(member_gids)
    share: dict[str, float] = {}
    inclusion: dict[str, float] = {}
    in_largest = set(int(g) for g in member_gids)
    network_gids = set(int(g) for g in network.gids)
    for code in ctx.domain_codes:
        did = ctx.domain_index[code]
        n_in = int((dom_ids == did).sum())
        if member_gids.size:
            share[code] = n_in / member_gids.size
        domain_gids = [
            gid
            for gid, p in ctx.population.projects.items()
            if p.domain == code and gid in network_gids
        ]
        if domain_gids:
            inclusion[code] = sum(
                1 for g in domain_gids if g in in_largest
            ) / len(domain_gids)

    # §4.3.2 centrality: top closeness vertices within the largest CC
    closeness = closeness_centrality(sub)
    order = np.argsort(closeness)[::-1][:n_central]
    central: list[tuple[str, int, float]] = []
    central_sub_ids = []
    for idx in order:
        original = int(verts[idx])
        kind, ident = network.label(original)
        central.append((kind, ident, float(closeness[idx])))
        central_sub_ids.append(int(idx))
    radius = radius_from(sub, np.array(central_sub_ids)) if central_sub_ids else 0

    return ComponentResult(
        components=cc,
        largest_users=int(user_members.size),
        largest_projects=int(project_members.size),
        diameter=diameter,
        domain_share_of_largest=share,
        domain_inclusion_prob=inclusion,
        central_entities=central,
        central_radius=radius,
    )


def brokerage_ranking(
    network: FileGenerationNetwork, top_k: int = 10
) -> list[tuple[str, int, float]]:
    """Betweenness ranking — the liaison-role view of §4.3.2."""
    bc = betweenness_centrality(network.graph)
    order = np.argsort(bc)[::-1][:top_k]
    return [
        (*network.label(int(v)), float(bc[v])) for v in order
    ]
