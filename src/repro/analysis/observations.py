"""The paper's twelve Observations as executable checks.

Each §4 observation becomes a predicate over the analysis results, with the
evidence recorded — a reproduction scorecard.  "Pass" means the qualitative
claim holds on the simulated center (absolute numbers are scale-dependent
and live in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.pipeline import PaperReport


@dataclass(frozen=True)
class ObservationCheck:
    number: int
    claim: str
    passed: bool
    evidence: str


def check_observations(report: PaperReport) -> list[ObservationCheck]:
    """Evaluate Observations 1–12 against a :class:`PaperReport`."""
    checks: list[ObservationCheck] = []

    # Observation 1 — org mix: government majority, academia+industry ≈42%
    org = report.fig5.org_fractions
    combined = org.get("academia", 0) + org.get("industry", 0)
    checks.append(
        ObservationCheck(
            1,
            "majority government users; academia+industry a sizeable ~42%",
            org.get("national_lab", 0) > 0.45 and 0.30 < combined < 0.55,
            f"national_lab={org.get('national_lab', 0):.0%}, "
            f"academia+industry={combined:.0%}",
        )
    )

    # Observation 2 — >30% of domains generate >100M (scaled) entries;
    # many files in few directories
    fig7 = report.fig7
    total = fig7.grand_total_files + fig7.grand_total_directories
    scaled_threshold = 100e6 * total / 4.344e9  # 100M at paper scale
    over = fig7.domains_over(int(scaled_threshold))
    checks.append(
        ObservationCheck(
            2,
            ">30% of domains exceed (scaled) 100M entries; files "
            "concentrate in few directories",
            len(over) >= 8 and fig7.mean_dir_ratio < 0.4,
            f"{len(over)} domains over threshold; mean dir share "
            f"{fig7.mean_dir_ratio:.0%}",
        )
    )

    # Observation 3 — projects ≈10× users in files; shallow hierarchies
    fig8 = report.fig8
    depth = report.fig8_depth
    checks.append(
        ObservationCheck(
            3,
            "projects hold ~10x a user's files; most hierarchies shallow",
            fig8.project_to_user_ratio > 2
            and depth.all_dirs.median < 15,
            f"project/user={fig8.project_to_user_ratio:.1f}x, "
            f"median dir depth={depth.all_dirs.median:.0f}",
        )
    )

    # Observation 4 — scientific + generic formats in the top-20; many
    # domain-specific formats dominate their domains
    trend = report.fig10
    top20 = set(trend.extensions)
    dominated = [d for d in report.table2.values() if d.dominant]
    checks.append(
        ObservationCheck(
            4,
            "scientific (.nc/.mat) and generic (.png/.txt) formats both "
            "popular; several domains dominated by domain formats",
            bool(top20 & {"nc", "mat", "h5"})
            and bool(top20 & {"png", "txt", "log", "dat"})
            and len(dominated) >= 3,
            f"top20∩scientific={sorted(top20 & {'nc', 'mat', 'h5'})}, "
            f"dominated domains={len(dominated)}",
        )
    )

    # Observation 5 — wide language spectrum: legacy high, emerging present
    ranking = report.fig11
    fortran = ranking.rank_of("Fortran")
    emerging = [
        lang for lang in ("Go", "Scala", "Swift", "Julia", "Rust")
        if ranking.rank_of(lang) is not None
    ]
    checks.append(
        ObservationCheck(
            5,
            "legacy languages rank far above IEEE; emerging ones appear",
            fortran is not None
            and fortran < ranking.ieee_rank_of("Fortran")
            and len(emerging) >= 2,
            f"Fortran rank {fortran} (IEEE 28); emerging present: "
            f"{', '.join(emerging)}",
        )
    )

    # Observation 6 — many domains tune stripe counts
    fig14 = report.fig14
    tuned = len(fig14.tuned_domains())
    checks.append(
        ObservationCheck(
            6,
            "storage performance actively explored: many domains tune "
            "OST counts",
            tuned >= 12,
            f"{tuned}/35 domains tuned; max stripe {fig14.max_observed}",
        )
    )

    # Observation 7 — file count grows severalfold over the window
    fig15 = report.fig15
    checks.append(
        ObservationCheck(
            7,
            "file count grows severalfold while directories stay flat",
            fig15.file_growth_factor > 2.5
            and fig15.dir_growth_factor < fig15.file_growth_factor,
            f"files x{fig15.file_growth_factor:.1f}, "
            f"dirs x{fig15.dir_growth_factor:.1f}",
        )
    )

    # Observation 8 — most files untouched weekly, yet ages beat the purge window
    fig13 = report.fig13.mean_fractions()
    fig16 = report.fig16
    checks.append(
        ObservationCheck(
            8,
            "most files untouched within a week, but files stay wanted "
            "beyond the 90-day purge window",
            fig13["untouched"] > 0.5 and fig16.fraction_over_window > 0.5,
            f"untouched={fig13['untouched']:.0%}, "
            f"mean age>90d in {fig16.fraction_over_window:.0%} of snapshots",
        )
    )

    # Observation 9 — reads burstier than writes; a few domains extreme
    fig17 = report.fig17
    write_meds = {
        c: s["median"] for c, s in fig17.write_by_domain.items()
    }
    bursty_exists = any(m < 0.15 for m in write_meds.values())
    checks.append(
        ObservationCheck(
            9,
            "similar burstiness trends across domains; reads ~100x "
            "burstier; a few domains extreme",
            fig17.read_write_gap() > 5 and bursty_exists,
            f"write/read gap {fig17.read_write_gap():.0f}x; "
            f"burstiest write median "
            f"{min(write_meds.values()) if write_meds else float('nan'):.3f}",
        )
    )

    # Observation 10 — degree distribution follows a power law
    fig18 = report.fig18
    checks.append(
        ObservationCheck(
            10,
            "file generation network degree distribution is power-law",
            fig18.follows_power_law and fig18.fit.loglog_slope < -1.0,
            f"alpha={fig18.fit.alpha:.2f}, KS={fig18.fit.ks_distance:.3f}, "
            f"slope={fig18.fit.loglog_slope:.2f}",
        )
    )

    # Observation 11 — mostly isolated, loosely connected network
    t3 = report.table3
    dist = t3.size_distribution
    tiny = sum(c for s, c in dist.items() if s <= 4)
    checks.append(
        ObservationCheck(
            11,
            "users/projects mostly isolated; one sparse giant component",
            t3.components.count > 80
            and tiny / max(t3.components.count, 1) > 0.6
            and t3.diameter >= 6,
            f"{t3.components.count} components ({tiny} tiny), "
            f"giant covers {t3.coverage:.0%}, diameter {t3.diameter}",
        )
    )

    # Observation 12 — collaboration rare overall; cli/csc active within domain
    fig20 = report.fig20
    top = fig20.top_domains(3)
    checks.append(
        ObservationCheck(
            12,
            "data-level collaboration rare (~1% of pairs); climate and "
            "computer science the active domains",
            fig20.sharing_fraction < 0.06 and "cli" in top,
            f"sharing pairs {fig20.sharing_fraction:.1%}; top domains "
            f"{', '.join(top)}",
        )
    )
    return checks


def render_observations(checks: list[ObservationCheck]) -> str:
    lines = ["#  | ok | claim / evidence", "-" * 76]
    for c in checks:
        mark = "PASS" if c.passed else "FAIL"
        lines.append(f"{c.number:>2} | {mark} | {c.claim}")
        lines.append(f"   |      |   {c.evidence}")
    passed = sum(1 for c in checks if c.passed)
    lines.append(f"{passed}/{len(checks)} observations reproduced")
    return "\n".join(lines)
