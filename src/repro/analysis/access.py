"""Weekly access patterns and file age (Figures 13 and 16, §4.2.3).

The paper's classification, applied to each adjacent snapshot pair over the
*regular files* present in both:

* **untouched** — all three timestamps identical;
* **readonly**  — only atime changed;
* **updated**   — mtime and/or ctime changed;
* **new** / **deleted** — set differences of the two snapshots' path sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.fs.clock import SECONDS_PER_DAY
from repro.query.engine import Kernel
from repro.scan.snapshot import Snapshot


@dataclass
class WeeklyAccess:
    """One bar of Figure 13."""

    label: str
    new: int
    deleted: int
    readonly: int
    updated: int
    untouched: int

    @property
    def intersection(self) -> int:
        return self.readonly + self.updated + self.untouched

    def fractions(self) -> dict[str, float]:
        """Shares over the union of both weeks' files, like the paper's bars."""
        total = self.intersection + self.new + self.deleted
        if total == 0:
            return {k: 0.0 for k in ("new", "deleted", "readonly", "updated", "untouched")}
        return {
            "new": self.new / total,
            "deleted": self.deleted / total,
            "readonly": self.readonly / total,
            "updated": self.updated / total,
            "untouched": self.untouched / total,
        }


def _classify_pair(prev: Snapshot, cur: Snapshot) -> WeeklyAccess:
    prev_files = prev.select(prev.is_file)
    cur_files = cur.select(cur.is_file)
    both = prev_files.intersect_ids(cur_files)
    new = int(cur_files.only_ids(prev_files).size)
    deleted = int(prev_files.only_ids(cur_files).size)
    if both.size:
        pr = prev_files.rows_for(both)
        cr = cur_files.rows_for(both)
        atime_changed = prev_files.atime[pr] != cur_files.atime[cr]
        write_changed = (prev_files.mtime[pr] != cur_files.mtime[cr]) | (
            prev_files.ctime[pr] != cur_files.ctime[cr]
        )
        readonly = int((atime_changed & ~write_changed).sum())
        updated = int(write_changed.sum())
        untouched = int((~atime_changed & ~write_changed).sum())
    else:
        readonly = updated = untouched = 0
    return WeeklyAccess(
        label=cur.label,
        new=new,
        deleted=deleted,
        readonly=readonly,
        updated=updated,
        untouched=untouched,
    )


@dataclass
class AccessPatternResult:
    """Figure 13: the full weekly series plus window averages."""

    weeks: list[WeeklyAccess]

    def mean_fractions(self) -> dict[str, float]:
        keys = ("new", "deleted", "readonly", "updated", "untouched")
        if not self.weeks:
            return {k: 0.0 for k in keys}
        acc = {k: 0.0 for k in keys}
        for week in self.weeks:
            f = week.fractions()
            for k in keys:
                acc[k] += f[k]
        return {k: v / len(self.weeks) for k, v in acc.items()}

    def new_to_readonly_ratio(self) -> float:
        """Paper: new files ≈4× the readonly files on most snapshots."""
        new = sum(w.new for w in self.weeks)
        readonly = sum(w.readonly for w in self.weeks)
        return new / readonly if readonly else float("inf")


def _classify_delta(delta) -> WeeklyAccess:
    """One Figure 13 bar straight from a delta sidecar — no snapshot load.

    Mirrors :func:`_classify_pair` exactly: a path counts as *new* when it
    is a file in ``cur`` but not in ``prev`` (added files plus dir→file
    flips), *deleted* symmetrically, and the file-in-both population splits
    into the delta's file↔file ``changed`` rows (classified by which
    timestamps moved) plus the untouched remainder, recovered by
    subtraction from the header's previous file count.
    """
    added_files = int((~delta.added_is_dir).sum())
    removed_files = int((~delta.removed_is_dir).sum())
    prev_file = ~delta.changed_was_dir
    cur_file = ~delta.changed_is_dir
    new = added_files + int((cur_file & ~prev_file).sum())
    deleted = removed_files + int((prev_file & ~cur_file).sum())
    both_total = int(delta.prev_files) - deleted
    ff = prev_file & cur_file
    atime_changed = (
        delta.changed_prev["atime"][ff] != delta.changed_cur["atime"][ff]
    )
    write_changed = (
        delta.changed_prev["mtime"][ff] != delta.changed_cur["mtime"][ff]
    ) | (delta.changed_prev["ctime"][ff] != delta.changed_cur["ctime"][ff])
    readonly = int((atime_changed & ~write_changed).sum())
    updated = int(write_changed.sum())
    changed_untouched = int((~atime_changed & ~write_changed).sum())
    untouched = both_total - int(ff.sum()) + changed_untouched
    return WeeklyAccess(
        label=delta.cur_label,
        new=new,
        deleted=deleted,
        readonly=readonly,
        updated=updated,
        untouched=untouched,
    )


def access_kernel() -> Kernel:
    """Figure 13 as a pair kernel: classify each adjacent snapshot pair.

    Delta-capable: a ``.rpd`` sidecar carries both sides of every changed
    row, which is exactly the information the pairwise classifier reads, so
    ``update`` appends one :class:`WeeklyAccess` per delta."""
    return Kernel(
        name="access",
        map_fn=_classify_pair,
        reduce_fn=lambda weeks: AccessPatternResult(weeks=list(weeks)),
        pairwise=True,
        update_fn=lambda state, delta: state + [_classify_delta(delta)],
        partials_to_state=list,
        state_to_result=lambda weeks: AccessPatternResult(weeks=list(weeks)),
    )


def access_patterns(ctx: AnalysisContext) -> AccessPatternResult:
    """Figure 13 over every adjacent snapshot pair."""
    return ctx.run_kernels([access_kernel()])["access"]


@dataclass
class FileAgeResult:
    """Figure 16: per-snapshot average file age (atime − mtime, clamped ≥0)."""

    labels: list[str]
    mean_age_days: np.ndarray
    median_age_days: np.ndarray
    purge_window_days: int = 90

    @property
    def fraction_over_window(self) -> float:
        """Share of snapshots whose average age exceeds the purge window
        (paper: 86%)."""
        if self.mean_age_days.size == 0:
            return 0.0
        return float((self.mean_age_days > self.purge_window_days).mean())

    @property
    def median_of_means(self) -> float:
        """Paper: 138 days."""
        return float(np.median(self.mean_age_days)) if self.mean_age_days.size else 0.0

    @property
    def max_of_means(self) -> float:
        """Paper: 214 days."""
        return float(self.mean_age_days.max()) if self.mean_age_days.size else 0.0


def _age_row(
    label: str, atime: np.ndarray, mtime: np.ndarray
) -> tuple[str, float, float]:
    """One Figure 16 point from a snapshot's file timestamps.

    The arrays must be in snapshot row order (path_id ascending): NumPy's
    pairwise mean depends on element order, and delta replay reproduces the
    full pass bit-for-bit only because both feed it identically ordered
    values.
    """
    ages = np.maximum(atime - mtime, 0) / SECONDS_PER_DAY
    if ages.size == 0:
        return label, 0.0, 0.0
    return label, float(ages.mean()), float(np.median(ages))


def _age_of(
    snapshot: Snapshot,
) -> tuple[tuple[str, float, float], np.ndarray, np.ndarray, np.ndarray]:
    """Map partial: the Figure 16 row plus the file rows that produced it.

    The trailing ``(path_id, atime, mtime)`` arrays cost one extra
    worker→parent transfer per snapshot but let ``partials_to_state`` seed
    the delta-replay state with the *last* snapshot's file population —
    the only part of a snapshot the age series needs to advance.
    """
    mask = snapshot.is_file
    atime = snapshot.atime[mask]
    mtime = snapshot.mtime[mask]
    return (
        _age_row(snapshot.label, atime, mtime),
        snapshot.path_id[mask],
        atime,
        mtime,
    )


@dataclass
class _AgeSeriesState:
    """Journaled state for the delta-capable ages kernel.

    ``rows`` is the series so far; the ``file_*`` arrays are the last
    snapshot's file rows in path_id-ascending order, exactly as a fresh
    load would present them.
    """

    rows: list
    file_pid: np.ndarray
    file_atime: np.ndarray
    file_mtime: np.ndarray


def _reduce_age_state(partials: list) -> _AgeSeriesState:
    rows = [p[0] for p in partials]
    if partials:
        _, pid, atime, mtime = partials[-1]
    else:
        pid = atime = mtime = np.empty(0, dtype=np.int64)
    return _AgeSeriesState(
        rows=rows, file_pid=pid, file_atime=atime, file_mtime=mtime
    )


def _update_ages(state: _AgeSeriesState, delta) -> _AgeSeriesState:
    """Advance the file-age series by one delta sidecar.

    The next snapshot's file population is the previous one minus every
    removed/changed pid, plus the delta's current-side file rows (added
    files and the file side of changed rows — dir→file flips included).
    Re-sorting by path_id restores snapshot row order, so the recomputed
    mean/median are bit-identical to a full map of that snapshot.
    """
    drop = np.concatenate(
        [delta.removed["path_id"], delta.changed_prev["path_id"]]
    )
    keep = np.isin(state.file_pid, drop, invert=True)
    add = ~delta.added_is_dir
    chg = ~delta.changed_is_dir
    pid = np.concatenate([
        state.file_pid[keep],
        delta.added["path_id"][add],
        delta.changed_cur["path_id"][chg],
    ])
    atime = np.concatenate([
        state.file_atime[keep],
        delta.added["atime"][add],
        delta.changed_cur["atime"][chg],
    ])
    mtime = np.concatenate([
        state.file_mtime[keep],
        delta.added["mtime"][add],
        delta.changed_cur["mtime"][chg],
    ])
    order = np.argsort(pid, kind="stable")
    pid, atime, mtime = pid[order], atime[order], mtime[order]
    row = _age_row(delta.cur_label, atime, mtime)
    return _AgeSeriesState(
        rows=state.rows + [row],
        file_pid=pid,
        file_atime=atime,
        file_mtime=mtime,
    )


def ages_kernel(purge_window_days: int = 90) -> Kernel:
    """Figure 16 as a kernel: per-snapshot mean/median file age.

    Delta-capable: the journaled state carries the last snapshot's file
    ``(path_id, atime, mtime)`` rows, and ``update`` applies one ``.rpd``
    sidecar's removed/added/changed sets to them before recomputing the
    new snapshot's mean/median — O(|delta| + files) per appended snapshot,
    no snapshot load, bit-identical series."""

    def rows_to_result(rows: list[tuple[str, float, float]]) -> FileAgeResult:
        return FileAgeResult(
            labels=[r[0] for r in rows],
            mean_age_days=np.array([r[1] for r in rows]),
            median_age_days=np.array([r[2] for r in rows]),
            purge_window_days=purge_window_days,
        )

    return Kernel(
        name="ages",
        map_fn=_age_of,
        reduce_fn=lambda partials: rows_to_result([p[0] for p in partials]),
        update_fn=_update_ages,
        partials_to_state=_reduce_age_state,
        state_to_result=lambda state: rows_to_result(state.rows),
    )


def file_ages(ctx: AnalysisContext, purge_window_days: int = 90) -> FileAgeResult:
    """Figure 16: the file-age series."""
    return ctx.run_kernels([ages_kernel(purge_window_days)])["ages"]
