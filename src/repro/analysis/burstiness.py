"""Burstiness of file operations (Figure 17, Table 1's c_v columns, §4.2.4).

Metric definition (the paper leaves the time base ambiguous; ours is fixed
and documented): for each (project, week) pair,

* **write c_v** — coefficient of variation of the *within-week offsets* of
  the mtimes of that week's new files;
* **read c_v** — the same over the atimes of that week's readonly files.

Pairs with fewer than ``min_files`` events are excluded, mirroring the
paper's exclusion of projects accessing fewer than 100 files in a week.
Per-domain distributions over the qualifying (project, week) samples give
Figure 17's box statistics; the per-domain median is Table 1's value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.query.engine import Kernel
from repro.scan.snapshot import Snapshot
from repro.stats.dispersion import coefficient_of_variation, five_number_summary


@dataclass
class BurstinessResult:
    """Figure 17: per-domain c_v distributions."""

    write_by_domain: dict[str, dict[str, float]]  # five-number summaries
    read_by_domain: dict[str, dict[str, float]]
    write_samples: dict[str, np.ndarray]
    read_samples: dict[str, np.ndarray]

    def write_median(self, code: str) -> float | None:
        s = self.write_by_domain.get(code)
        return s["median"] if s else None

    def read_median(self, code: str) -> float | None:
        s = self.read_by_domain.get(code)
        return s["median"] if s else None

    def read_write_gap(self) -> float:
        """Overall median write c_v / median read c_v (paper: ≈100×)."""
        writes = np.concatenate(
            [v for v in self.write_samples.values()]
        ) if self.write_samples else np.empty(0)
        reads = np.concatenate(
            [v for v in self.read_samples.values()]
        ) if self.read_samples else np.empty(0)
        if writes.size == 0 or reads.size == 0:
            return float("nan")
        read_med = float(np.median(reads))
        if read_med == 0.0:
            return float("inf")
        return float(np.median(writes)) / read_med


def _pair_events(
    prev: Snapshot, cur: Snapshot
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(gid, mtime-offset) of new files and (gid, atime-offset) of readonly
    files for one week, offsets relative to the previous snapshot time."""
    prev_files = prev.select(prev.is_file)
    cur_files = cur.select(cur.is_file)
    week_start = prev.timestamp

    new_ids = cur_files.only_ids(prev_files)
    rows = cur_files.rows_for(new_ids)
    new_gid = cur_files.gid[rows].astype(np.int64)
    new_off = (cur_files.mtime[rows] - week_start).astype(np.float64)

    both = prev_files.intersect_ids(cur_files)
    if both.size:
        pr = prev_files.rows_for(both)
        cr = cur_files.rows_for(both)
        atime_changed = prev_files.atime[pr] != cur_files.atime[cr]
        write_changed = (prev_files.mtime[pr] != cur_files.mtime[cr]) | (
            prev_files.ctime[pr] != cur_files.ctime[cr]
        )
        readonly = atime_changed & ~write_changed
        ro_gid = cur_files.gid[cr[readonly]].astype(np.int64)
        ro_off = (cur_files.atime[cr[readonly]] - week_start).astype(np.float64)
    else:
        ro_gid = np.empty(0, dtype=np.int64)
        ro_off = np.empty(0, dtype=np.float64)
    return new_gid, new_off, ro_gid, ro_off


def _per_project_cv(
    gids: np.ndarray, offsets: np.ndarray, min_files: int
) -> dict[int, float]:
    out: dict[int, float] = {}
    if gids.size == 0:
        return out
    order = np.argsort(gids, kind="stable")
    gids, offsets = gids[order], offsets[order]
    bounds = np.flatnonzero(np.diff(gids)) + 1
    for chunk_g, chunk_off in zip(
        np.split(gids, bounds), np.split(offsets, bounds)
    ):
        if chunk_off.size >= min_files:
            out[int(chunk_g[0])] = coefficient_of_variation(chunk_off)
    return out


def burstiness_kernel(ctx: AnalysisContext, min_files: int = 100) -> Kernel:
    """Figure 17 as a pair kernel: weekly events map, c_v aggregation reduce."""

    def reduce_burstiness(pair_results: list[tuple]) -> BurstinessResult:
        write_samples: dict[str, list[float]] = {}
        read_samples: dict[str, list[float]] = {}
        code_of = {i: c for c, i in ctx.domain_index.items()}
        for new_gid, new_off, ro_gid, ro_off in pair_results:
            for gid, cv in _per_project_cv(new_gid, new_off, min_files).items():
                dom = ctx.gid_to_domain_id.get(gid)
                if dom is not None and np.isfinite(cv):
                    write_samples.setdefault(code_of[dom], []).append(cv)
            for gid, cv in _per_project_cv(ro_gid, ro_off, min_files).items():
                dom = ctx.gid_to_domain_id.get(gid)
                if dom is not None and np.isfinite(cv):
                    read_samples.setdefault(code_of[dom], []).append(cv)

        write_stats = {
            code: five_number_summary(np.array(vals))
            for code, vals in write_samples.items()
        }
        read_stats = {
            code: five_number_summary(np.array(vals))
            for code, vals in read_samples.items()
        }
        return BurstinessResult(
            write_by_domain=write_stats,
            read_by_domain=read_stats,
            write_samples={c: np.array(v) for c, v in write_samples.items()},
            read_samples={c: np.array(v) for c, v in read_samples.items()},
        )

    return Kernel(
        name="burstiness",
        map_fn=_pair_events,
        reduce_fn=reduce_burstiness,
        pairwise=True,
    )


def burstiness(ctx: AnalysisContext, min_files: int = 100) -> BurstinessResult:
    """Figure 17 / Table 1 c_v columns.

    ``min_files`` is the qualification threshold per (project, week); use a
    smaller value for reduced-scale simulations (the paper used 100 at full
    scale).
    """
    return ctx.run_kernels([burstiness_kernel(ctx, min_files)])["burstiness"]
