"""The paper's analysis suite: one module per evaluation artifact.

Every module consumes an :class:`~repro.analysis.context.AnalysisContext`
(snapshot collection + population + executor) and returns plain result
dataclasses; :mod:`repro.analysis.report` renders them as the paper's
tables/series.

Module → paper artifact map:

================  ====================================================
``users``         Figure 5 (user classification), Figure 6 (participation)
``files``         Figure 7 (entries per domain), Figure 8(b) (count CDFs)
``depth``         Figure 8(a), Figure 9 (directory depth)
``extensions``    Table 2, Figure 10 (extension popularity & trend)
``languages``     Figures 11 and 12 (programming languages)
``ost``           Figure 14, Observation 6 (stripe tuning)
``growth``        Figure 15, Observation 7 (namespace growth)
``access``        Figure 13 (weekly access patterns), Figure 16 (file age)
``burstiness``    Figure 17, Table 1's c_v columns (§4.2.4)
``network``       Figure 18, Table 3, Figure 19, §4.3.2 centrality
``collaboration`` Figure 20, Table 1's Collab. column (§4.3.3)
``table1``        Table 1 (the per-domain summary assembling all above)
================  ====================================================
"""

from repro.analysis.context import AnalysisContext

__all__ = ["AnalysisContext"]
