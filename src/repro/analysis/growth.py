"""Namespace growth over the observation window (Figure 15, Observation 7)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.query.engine import Kernel
from repro.scan.lustredu import ScanStats
from repro.scan.snapshot import Snapshot


@dataclass
class GrowthSeries:
    """Figure 15: file and directory counts per snapshot."""

    labels: list[str]
    files: np.ndarray
    directories: np.ndarray
    #: estimated PSV snapshot sizes (the paper's 50 GB → 240 GB remark)
    snapshot_bytes: np.ndarray | None = None

    @property
    def file_growth_factor(self) -> float:
        """Last/first file count (paper: ≈5× over the window)."""
        if self.files.size == 0 or self.files[0] == 0:
            return float("nan")
        return float(self.files[-1] / self.files[0])

    @property
    def dir_growth_factor(self) -> float:
        if self.directories.size == 0 or self.directories[0] == 0:
            return float("nan")
        return float(self.directories[-1] / self.directories[0])

    def dir_share(self) -> np.ndarray:
        """Directory share of entries per snapshot (paper: <10% late on)."""
        total = self.files + self.directories
        return np.divide(
            self.directories,
            total,
            out=np.zeros_like(self.directories, dtype=np.float64),
            where=total > 0,
        )

    @property
    def final_dir_share(self) -> float:
        share = self.dir_share()
        return float(share[-1]) if share.size else 0.0


def _map_growth(snapshot: Snapshot) -> tuple[str, int, int]:
    return snapshot.label, snapshot.n_files, snapshot.n_dirs


def growth_kernel(scan_history: list[ScanStats] | None = None) -> Kernel:
    """Figure 15 as a kernel: per-snapshot file/dir counts.

    Delta-capable: the state is simply the per-snapshot count rows, and the
    delta sidecar's header already carries the appended snapshot's file/dir
    totals — no namespace load at all."""

    def reduce_growth(rows: list[tuple[str, int, int]]) -> GrowthSeries:
        labels = [r[0] for r in rows]
        snapshot_bytes = None
        if scan_history is not None:
            by_label = {s.label: s.psv_bytes for s in scan_history}
            snapshot_bytes = np.array(
                [by_label.get(label, 0) for label in labels], dtype=np.int64
            )
        return GrowthSeries(
            labels=labels,
            files=np.array([r[1] for r in rows], dtype=np.int64),
            directories=np.array([r[2] for r in rows], dtype=np.int64),
            snapshot_bytes=snapshot_bytes,
        )

    def update_growth(
        state: list[tuple[str, int, int]], delta
    ) -> list[tuple[str, int, int]]:
        return state + [(delta.cur_label, delta.cur_files, delta.cur_dirs)]

    return Kernel(
        name="growth",
        map_fn=_map_growth,
        reduce_fn=reduce_growth,
        update_fn=update_growth,
        partials_to_state=list,
        state_to_result=reduce_growth,
    )


def growth_series(
    ctx: AnalysisContext, scan_history: list[ScanStats] | None = None
) -> GrowthSeries:
    """Figure 15 from the snapshot series (optionally with scan sizes)."""
    return ctx.run_kernels([growth_kernel(scan_history)])["growth"]
