"""Namespace growth over the observation window (Figure 15, Observation 7)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.scan.lustredu import ScanStats


@dataclass
class GrowthSeries:
    """Figure 15: file and directory counts per snapshot."""

    labels: list[str]
    files: np.ndarray
    directories: np.ndarray
    #: estimated PSV snapshot sizes (the paper's 50 GB → 240 GB remark)
    snapshot_bytes: np.ndarray | None = None

    @property
    def file_growth_factor(self) -> float:
        """Last/first file count (paper: ≈5× over the window)."""
        if self.files.size == 0 or self.files[0] == 0:
            return float("nan")
        return float(self.files[-1] / self.files[0])

    @property
    def dir_growth_factor(self) -> float:
        if self.directories.size == 0 or self.directories[0] == 0:
            return float("nan")
        return float(self.directories[-1] / self.directories[0])

    def dir_share(self) -> np.ndarray:
        """Directory share of entries per snapshot (paper: <10% late on)."""
        total = self.files + self.directories
        return np.divide(
            self.directories,
            total,
            out=np.zeros_like(self.directories, dtype=np.float64),
            where=total > 0,
        )

    @property
    def final_dir_share(self) -> float:
        share = self.dir_share()
        return float(share[-1]) if share.size else 0.0


def growth_series(
    ctx: AnalysisContext, scan_history: list[ScanStats] | None = None
) -> GrowthSeries:
    """Figure 15 from the snapshot series (optionally with scan sizes)."""
    labels, files, dirs = [], [], []
    for snap in ctx.collection:
        labels.append(snap.label)
        files.append(snap.n_files)
        dirs.append(snap.n_dirs)
    snapshot_bytes = None
    if scan_history is not None:
        by_label = {s.label: s.psv_bytes for s in scan_history}
        snapshot_bytes = np.array(
            [by_label.get(label, 0) for label in labels], dtype=np.int64
        )
    return GrowthSeries(
        labels=labels,
        files=np.array(files, dtype=np.int64),
        directories=np.array(dirs, dtype=np.int64),
        snapshot_bytes=snapshot_bytes,
    )
