"""Table 1 — the per-domain summary that heads the paper.

One row per science domain: project count, cumulative entries, directory
depth [median, max], top extension (%), top-two programming languages,
maximum OST count, write/read c_v medians, largest-component inclusion
probability (%), and collaboration share (%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import (
    burstiness as burst_mod,
)
from repro.analysis.collaboration import collaboration
from repro.analysis.context import AnalysisContext
from repro.analysis.depth import directory_depths
from repro.analysis.extensions import extensions_by_domain
from repro.analysis.files import entries_by_domain
from repro.analysis.languages import languages_by_domain
from repro.analysis.network import build_network, component_analysis
from repro.analysis.ost import stripe_stats


@dataclass
class Table1Row:
    domain: str
    name: str
    n_projects: int
    entries_k: float
    depth_median: float
    depth_max: float
    top_ext: str
    top_ext_pct: float
    languages: tuple[str, ...]
    max_ost: int
    write_cv: float | None
    read_cv: float | None
    network_pct: float
    collab_pct: float


def assemble_table1(
    ctx: AnalysisContext,
    *,
    entries,
    depths,
    exts,
    langs,
    stripes,
    cv,
    comp,
    collab,
) -> list[Table1Row]:
    """Assemble Table 1 from already-computed section results.

    The fused registry pass calls this with results it computed once; the
    legacy :func:`build_table1` computes each input itself.
    """
    from repro.synth.domains import DOMAINS

    rows: list[Table1Row] = []
    for code in ctx.domain_codes:
        spec = DOMAINS[code]
        depth_summary = depths.by_domain.get(code)
        ext = exts.get(code)
        top_ext, top_pct = (ext.top[0] if ext and ext.top else ("-", 0.0))
        lang_pair = tuple(langs.top(code, 2))
        stripe = stripes.by_domain.get(code)
        rows.append(
            Table1Row(
                domain=code,
                name=spec.name,
                n_projects=spec.n_projects,
                entries_k=entries.total_entries(code) / 1000.0,
                depth_median=depth_summary["median"] if depth_summary else 0.0,
                depth_max=depth_summary["max"] if depth_summary else 0.0,
                top_ext=top_ext,
                top_ext_pct=top_pct,
                languages=lang_pair,
                max_ost=stripe[2] if stripe else 0,
                write_cv=cv.write_median(code),
                read_cv=cv.read_median(code),
                network_pct=100.0 * comp.domain_inclusion_prob.get(code, 0.0),
                collab_pct=collab.domain_pair_share.get(code, 0.0),
            )
        )
    return rows


def build_table1(
    ctx: AnalysisContext, burstiness_min_files: int = 10
) -> list[Table1Row]:
    """Assemble the full Table 1, computing each input analysis."""
    network = build_network(ctx)
    return assemble_table1(
        ctx,
        entries=entries_by_domain(ctx),
        depths=directory_depths(ctx),
        exts=extensions_by_domain(ctx),
        langs=languages_by_domain(ctx),
        stripes=stripe_stats(ctx),
        cv=burst_mod.burstiness(ctx, min_files=burstiness_min_files),
        comp=component_analysis(ctx, network),
        collab=collaboration(ctx),
    )
