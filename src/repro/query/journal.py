"""Checkpoint journal for fused kernel passes — crash-safe resume.

A killed 72-snapshot ``analyze_archive()`` used to restart from zero.  The
journal fixes that: as the fused pass completes each snapshot's map phase,
the per-snapshot partials are appended to a JSONL file (pickle payload,
base64-encoded, CRC-protected, fsynced per record).  A rerun pointed at the
same journal replays the completed rows instantly and the engine executes
only the remaining snapshot indices.

Integrity and invalidation:

* the first line is a fingerprint record (kernel names, snapshot count, a
  CRC of the snapshot labels, plus an optional caller-supplied config
  fingerprint); a journal whose fingerprint disagrees with the live run is
  discarded with a warning — stale checkpoints never feed wrong partials
  into a reduce;
* every data record carries a CRC32 of its pickle payload; a torn final
  line (the crash-mid-append case) or a bit-flipped record is dropped, so
  its snapshot simply re-runs;
* appends are flushed + fsynced before the engine moves on, so a SIGKILL
  between snapshots loses at most the in-flight row.

The payloads are pickles — the journal is local, trusted state (same
threat model as the ``.rpq`` files themselves), not an interchange format.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import warnings
import zlib
from pathlib import Path
from typing import Any

_VERSION = 1


def _labels_crc(labels: list[str]) -> int:
    return zlib.crc32("\n".join(labels).encode("utf-8"))


class KernelJournal:
    """Append-only per-snapshot checkpoint for one fused kernel pass.

    Parameters
    ----------
    path:
        JSONL journal file; created (with its fingerprint header) on the
        first append if absent.
    kernels:
        Kernel names of the pass (order-insensitive fingerprint input).
    labels:
        Snapshot labels of the collection, in index order.
    fingerprint:
        Optional extra identity (e.g. the archive config fingerprint); any
        JSON-serializable mapping.
    """

    def __init__(
        self,
        path: str | Path,
        kernels: list[str],
        labels: list[str],
        fingerprint: dict | None = None,
    ) -> None:
        self.path = Path(path)
        self._meta = {
            "kind": "repro-kernel-journal",
            "version": _VERSION,
            "kernels": sorted(kernels),
            "n": len(labels),
            "labels_crc": _labels_crc(list(labels)),
            "fingerprint": fingerprint or {},
        }
        self._fh = None
        self.restored = 0
        self.dropped = 0

    # -- read side ----------------------------------------------------------

    def load(self) -> dict[int, Any]:
        """Completed ``{snapshot index: row}`` from a prior run.

        Returns ``{}`` (and schedules a fresh journal) when the file is
        absent or its fingerprint does not match this pass.  Records that
        fail JSON parsing or the payload CRC are dropped individually — a
        torn tail only costs its own snapshot.
        """
        if not self.path.exists():
            return {}
        rows: dict[int, Any] = {}
        with open(self.path, encoding="utf-8") as fh:
            first = fh.readline()
            try:
                meta = json.loads(first)
            except ValueError:
                meta = None
            if not isinstance(meta, dict) or any(
                meta.get(k) != v for k, v in self._meta.items()
            ):
                warnings.warn(
                    f"checkpoint {self.path} belongs to a different run "
                    "(kernels, snapshot window, or config changed) — starting fresh",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self.path.unlink()
                return {}
            for line in fh:
                row = self._decode_record(line)
                if row is None:
                    self.dropped += 1
                    continue
                index, value = row
                if 0 <= index < self._meta["n"]:
                    rows[index] = value
        self.restored = len(rows)
        return rows

    def _decode_record(self, line: str) -> tuple[int, Any] | None:
        try:
            rec = json.loads(line)
            payload = base64.b64decode(rec["data"])
            if zlib.crc32(payload) != rec["crc32"]:
                return None
            return int(rec["index"]), pickle.loads(payload)
        except Exception:
            return None

    # -- write side ---------------------------------------------------------

    def _open(self):
        if self._fh is None:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._fh.write(json.dumps(self._meta) + "\n")
                self._sync()
        return self._fh

    def _sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, index: int, value: Any) -> None:
        """Durably record one completed snapshot row (flush + fsync)."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        record = {
            "index": int(index),
            "crc32": zlib.crc32(payload),
            "data": base64.b64encode(payload).decode("ascii"),
        }
        fh = self._open()
        fh.write(json.dumps(record) + "\n")
        self._sync()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def discard(self) -> None:
        """Close and delete the journal (the pass completed successfully)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "KernelJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
