"""Checkpoint journal for fused kernel passes — crash-safe resume.

A killed 72-snapshot ``analyze_archive()`` used to restart from zero.  The
journal fixes that: as the fused pass completes each snapshot's map phase,
the per-snapshot partials are appended to a JSONL file (pickle payload,
base64-encoded, CRC-protected, fsynced per record).  A rerun pointed at the
same journal replays the completed rows instantly and the engine executes
only the remaining snapshot indices.

Integrity and invalidation:

* the first line is a fingerprint record (kernel names, snapshot count, a
  CRC of the snapshot labels, plus an optional caller-supplied config
  fingerprint); a journal whose fingerprint disagrees with the live run is
  discarded with a warning — stale checkpoints never feed wrong partials
  into a reduce;
* every data record carries a CRC32 of its pickle payload; a torn final
  line (the crash-mid-append case) or a bit-flipped record is dropped, so
  its snapshot simply re-runs;
* appends are flushed + fsynced before the engine moves on, so a SIGKILL
  between snapshots loses at most the in-flight row.

The payloads are pickles — the journal is local, trusted state (same
threat model as the ``.rpq`` files themselves), not an interchange format.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import warnings
import zlib
from pathlib import Path
from typing import Any

_VERSION = 1


def _labels_crc(labels: list[str]) -> int:
    return zlib.crc32("\n".join(labels).encode("utf-8"))


class KernelJournal:
    """Append-only per-snapshot checkpoint for one fused kernel pass.

    Parameters
    ----------
    path:
        JSONL journal file; created (with its fingerprint header) on the
        first append if absent.
    kernels:
        Kernel names of the pass (order-insensitive fingerprint input).
    labels:
        Snapshot labels of the collection, in index order.
    fingerprint:
        Optional extra identity (e.g. the archive config fingerprint); any
        JSON-serializable mapping.
    """

    def __init__(
        self,
        path: str | Path,
        kernels: list[str],
        labels: list[str],
        fingerprint: dict | None = None,
    ) -> None:
        self.path = Path(path)
        self._meta = {
            "kind": "repro-kernel-journal",
            "version": _VERSION,
            "kernels": sorted(kernels),
            "n": len(labels),
            "labels_crc": _labels_crc(list(labels)),
            "fingerprint": fingerprint or {},
        }
        self._fh = None
        self.restored = 0
        self.dropped = 0

    # -- read side ----------------------------------------------------------

    def load(self) -> dict[int, Any]:
        """Completed ``{snapshot index: row}`` from a prior run.

        Returns ``{}`` (and schedules a fresh journal) when the file is
        absent or its fingerprint does not match this pass.  Records that
        fail JSON parsing or the payload CRC are dropped individually — a
        torn tail only costs its own snapshot.
        """
        if not self.path.exists():
            return {}
        rows: dict[int, Any] = {}
        with open(self.path, encoding="utf-8") as fh:
            first = fh.readline()
            try:
                meta = json.loads(first)
            except ValueError:
                meta = None
            if not isinstance(meta, dict) or any(
                meta.get(k) != v for k, v in self._meta.items()
            ):
                warnings.warn(
                    f"checkpoint {self.path} belongs to a different run "
                    "(kernels, snapshot window, or config changed) — starting fresh",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self.path.unlink()
                return {}
            for line in fh:
                row = self._decode_record(line)
                if row is None:
                    self.dropped += 1
                    continue
                index, value = row
                if 0 <= index < self._meta["n"]:
                    rows[index] = value
        self.restored = len(rows)
        return rows

    def _decode_record(self, line: str) -> tuple[int, Any] | None:
        try:
            rec = json.loads(line)
            payload = base64.b64decode(rec["data"])
            if zlib.crc32(payload) != rec["crc32"]:
                return None
            return int(rec["index"]), pickle.loads(payload)
        except Exception:
            return None

    # -- write side ---------------------------------------------------------

    def _open(self):
        if self._fh is None:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._fh.write(json.dumps(self._meta) + "\n")
                self._sync()
        return self._fh

    def _sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, index: int, value: Any) -> None:
        """Durably record one completed snapshot row (flush + fsync)."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        record = {
            "index": int(index),
            "crc32": zlib.crc32(payload),
            "data": base64.b64encode(payload).decode("ascii"),
        }
        fh = self._open()
        fh.write(json.dumps(record) + "\n")
        self._sync()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def discard(self) -> None:
        """Close and delete the journal (the pass completed successfully)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "KernelJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class KernelStateStore:
    """Durable per-kernel reduced state for incremental (delta) analysis.

    Where :class:`KernelJournal` checkpoints *within* one pass, the state
    store carries reduced kernel states *across* runs: after a healthy
    ``analyze_archive()`` the store holds, for each delta-capable kernel,
    the state that summarizes every snapshot analyzed so far — plus the
    reader's :class:`~repro.scan.paths.PathTable`, so delta sidecars intern
    new strings onto exactly the ids a full load would have allocated.

    Invalidation mirrors the journal: the stored fingerprint binds the
    archive config fingerprint *and* the delta format config, and the
    stored labels must be a strict prefix of the live collection's labels.
    Any disagreement discards the state with a warning — stale states are
    never replayed against a mismatched archive.  Writes are atomic
    (same-directory tmp + fsync + rename), so a SIGKILL mid-save leaves
    the previous state intact.
    """

    def __init__(
        self,
        path: str | Path,
        fingerprint: dict | None = None,
    ) -> None:
        self.path = Path(path)
        self._fingerprint = fingerprint or {}

    def load(
        self, labels: list[str], content_ids: list[int] | None = None
    ) -> tuple[dict[str, Any], list[str], Any]:
        """Return ``(states, stored_labels, path_table)`` or empties.

        ``labels`` is the live collection's label list; stored labels must
        be a non-empty strict prefix of it (equal means nothing new to
        analyze — still returned, the caller decides).  ``content_ids``
        are the live per-snapshot content identities
        (:meth:`~repro.scan.store.DiskSnapshotCollection.content_ids`);
        when given, the stored ids must match position-for-position over
        the stored prefix — equal labels do *not* imply equal bytes when
        an archive is rewritten.  A missing file, fingerprint mismatch,
        label/content mismatch, or corrupt payload all reset to
        ``({}, [], None)`` — with a warning for every case except the
        missing file.
        """
        empty: tuple[dict[str, Any], list[str], Any] = ({}, [], None)
        if not self.path.exists():
            return empty
        try:
            with open(self.path, "rb") as fh:
                meta = json.loads(fh.readline())
                payload = fh.read()
            if (
                not isinstance(meta, dict)
                or meta.get("kind") != "repro-kernel-state"
                or meta.get("version") != _VERSION
                or zlib.crc32(payload) != meta.get("crc32")
            ):
                raise ValueError("bad header or payload CRC")
            if meta.get("fingerprint") != self._fingerprint:
                warnings.warn(
                    f"kernel state {self.path} was written under a different "
                    "archive/delta config — discarding it and re-analyzing "
                    "from scratch",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self._discard()
                return empty
            stored = list(meta.get("labels", []))
            if not stored or stored != list(labels[: len(stored)]):
                warnings.warn(
                    f"kernel state {self.path} covers labels that are not a "
                    "prefix of the archive's snapshots — discarding it",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self._discard()
                return empty
            if content_ids is not None:
                stored_ids = list(meta.get("snapshots", []))
                live_ids = [int(c) for c in content_ids[: len(stored)]]
                if stored_ids != live_ids:
                    warnings.warn(
                        f"kernel state {self.path} was journaled against "
                        "snapshot contents that have since been rewritten "
                        "(same labels, different data) — discarding it and "
                        "re-analyzing from scratch",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    self._discard()
                    return empty
            states, table = pickle.loads(payload)
        except Exception:
            warnings.warn(
                f"kernel state {self.path} is unreadable or corrupt — "
                "discarding it and re-analyzing from scratch",
                RuntimeWarning,
                stacklevel=3,
            )
            self._discard()
            return empty
        return dict(states), stored, table

    def save(
        self,
        states: dict[str, Any],
        labels: list[str],
        path_table: Any,
        content_ids: list[int] | None = None,
    ) -> None:
        """Atomically persist states + the interning table for ``labels``."""
        from repro.core.durable import atomic_write

        payload = pickle.dumps(
            (dict(states), path_table), protocol=pickle.HIGHEST_PROTOCOL
        )
        meta = {
            "kind": "repro-kernel-state",
            "version": _VERSION,
            "fingerprint": self._fingerprint,
            "labels": list(labels),
            "snapshots": [int(c) for c in content_ids or []],
            "kernels": sorted(states),
            "crc32": zlib.crc32(payload),
        }
        with atomic_write(self.path, "wb") as fh:
            fh.write(json.dumps(meta).encode("utf-8") + b"\n")
            fh.write(payload)

    def _discard(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
