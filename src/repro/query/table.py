"""Columnar table with vectorized relational operations.

A deliberately small engine: enough to express every query in the paper's
analysis suite (filter → group-by → aggregate → join), while staying pure
NumPy.  Group-by uses a lexsort + ``reduceat`` plan, the textbook vectorized
aggregation strategy for columnar data.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np


class ColumnTable:
    """Immutable-ish dict of equally-long NumPy columns."""

    def __init__(self, columns: dict[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {name: np.asarray(col).shape[0] for name, col in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"ragged columns: {lengths}")
        self._cols = {name: np.asarray(col) for name, col in columns.items()}
        self.n_rows = next(iter(lengths.values()))

    # -- basic access ------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return list(self._cols)

    def __getitem__(self, name: str) -> np.ndarray:
        return self._cols[name]

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __len__(self) -> int:
        return self.n_rows

    def select(self, names: Sequence[str]) -> "ColumnTable":
        return ColumnTable({n: self._cols[n] for n in names})

    def with_column(self, name: str, values: np.ndarray) -> "ColumnTable":
        values = np.asarray(values)
        if values.shape[0] != self.n_rows:
            raise ValueError(
                f"column {name}: {values.shape[0]} rows, table has {self.n_rows}"
            )
        cols = dict(self._cols)
        cols[name] = values
        return ColumnTable(cols)

    def filter(self, mask: np.ndarray) -> "ColumnTable":
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape[0] != self.n_rows:
            raise ValueError("filter needs a boolean mask of table length")
        return ColumnTable({n: c[mask] for n, c in self._cols.items()})

    def take(self, indices: np.ndarray) -> "ColumnTable":
        return ColumnTable({n: c[indices] for n, c in self._cols.items()})

    def sort_by(self, name: str, descending: bool = False) -> "ColumnTable":
        order = np.argsort(self._cols[name], kind="stable")
        if descending:
            order = order[::-1]
        return self.take(order)

    def head(self, n: int = 5) -> "ColumnTable":
        return self.take(np.arange(min(n, self.n_rows)))

    def to_dicts(self) -> list[dict]:
        """Row-wise materialization (tests and report rendering only)."""
        names = self.column_names
        return [
            {name: self._cols[name][i].item() for name in names}
            for i in range(self.n_rows)
        ]

    # -- relational ops ------------------------------------------------------

    def groupby(self, keys: str | Sequence[str]) -> "GroupBy":
        key_names = [keys] if isinstance(keys, str) else list(keys)
        for k in key_names:
            if k not in self._cols:
                raise KeyError(k)
        return GroupBy(self, key_names)

    def join(self, other: "ColumnTable", on: str, how: str = "inner") -> "ColumnTable":
        """Equi-join on one integer key column.

        ``inner`` keeps matching rows; ``left`` keeps all left rows, filling
        unmatched right numeric columns with -1.  Right key must be unique
        (it is a dimension table in every use here: accounts, projects).
        """
        if how not in ("inner", "left"):
            raise ValueError(f"unsupported join type {how!r}")
        left_key = self._cols[on]
        right_key = other._cols[on]
        uniq, first = np.unique(right_key, return_index=True)
        if uniq.size != right_key.size:
            raise ValueError(f"join key {on!r} is not unique on the right side")
        pos = np.searchsorted(uniq, left_key)
        pos_clipped = np.clip(pos, 0, uniq.size - 1)
        matched = uniq[pos_clipped] == left_key
        right_rows = first[pos_clipped]
        if how == "inner":
            keep = np.flatnonzero(matched)
            cols = {n: c[keep] for n, c in self._cols.items()}
            for n, c in other._cols.items():
                if n != on:
                    cols[n] = c[right_rows[keep]]
            return ColumnTable(cols)
        # left join
        cols = dict(self._cols)
        for n, c in other._cols.items():
            if n == on:
                continue
            out = c[right_rows].copy()
            if np.issubdtype(out.dtype, np.number):
                out[~matched] = -1
            else:
                out = out.astype(object)
                out[~matched] = None
            cols[n] = out
        return ColumnTable(cols)

    def unique(self, name: str) -> np.ndarray:
        return np.unique(self._cols[name])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ColumnTable({self.n_rows} rows, cols={self.column_names})"


class GroupBy:
    """Lazily-planned group-by over one or more key columns."""

    def __init__(self, table: ColumnTable, keys: list[str]) -> None:
        self.table = table
        self.keys = keys
        key_cols = [table[k] for k in keys]
        # lexsort: last key is primary, so reverse for intuitive ordering
        self._order = np.lexsort(key_cols[::-1])
        sorted_keys = [c[self._order] for c in key_cols]
        if table.n_rows == 0:
            self._starts = np.empty(0, dtype=np.int64)
        else:
            change = np.zeros(table.n_rows, dtype=bool)
            change[0] = True
            for c in sorted_keys:
                change[1:] |= c[1:] != c[:-1]
            self._starts = np.flatnonzero(change)
        self._sorted_keys = sorted_keys

    @property
    def n_groups(self) -> int:
        return int(self._starts.size)

    def _key_columns(self) -> dict[str, np.ndarray]:
        return {
            name: col[self._starts]
            for name, col in zip(self.keys, self._sorted_keys)
        }

    def _sorted(self, name: str) -> np.ndarray:
        return self.table[name][self._order]

    def count(self, as_name: str = "count") -> ColumnTable:
        cols = self._key_columns()
        n = self.table.n_rows
        sizes = np.diff(np.append(self._starts, n))
        cols[as_name] = sizes.astype(np.int64)
        return ColumnTable(cols)

    def _reduceat(self, name: str, ufunc: np.ufunc, as_name: str) -> ColumnTable:
        cols = self._key_columns()
        if self.n_groups == 0:
            cols[as_name] = np.empty(0, dtype=self.table[name].dtype)
            return ColumnTable(cols)
        cols[as_name] = ufunc.reduceat(self._sorted(name), self._starts)
        return ColumnTable(cols)

    def sum(self, name: str, as_name: str | None = None) -> ColumnTable:
        return self._reduceat(name, np.add, as_name or f"{name}_sum")

    def min(self, name: str, as_name: str | None = None) -> ColumnTable:
        return self._reduceat(name, np.minimum, as_name or f"{name}_min")

    def max(self, name: str, as_name: str | None = None) -> ColumnTable:
        return self._reduceat(name, np.maximum, as_name or f"{name}_max")

    def mean(self, name: str, as_name: str | None = None) -> ColumnTable:
        cols = self._key_columns()
        n = self.table.n_rows
        sizes = np.diff(np.append(self._starts, n))
        if self.n_groups == 0:
            cols[as_name or f"{name}_mean"] = np.empty(0, dtype=np.float64)
            return ColumnTable(cols)
        sums = np.add.reduceat(self._sorted(name).astype(np.float64), self._starts)
        cols[as_name or f"{name}_mean"] = sums / sizes
        return ColumnTable(cols)

    def nunique(self, name: str, as_name: str | None = None) -> ColumnTable:
        cols = self._key_columns()
        out = np.empty(self.n_groups, dtype=np.int64)
        data = self._sorted(name)
        bounds = np.append(self._starts, self.table.n_rows)
        for i in range(self.n_groups):
            out[i] = np.unique(data[bounds[i] : bounds[i + 1]]).size
        cols[as_name or f"{name}_nunique"] = out
        return ColumnTable(cols)

    def apply(self, name: str, fn: Callable[[np.ndarray], float],
              as_name: str | None = None) -> ColumnTable:
        """Arbitrary per-group reduction (e.g. the burstiness ``c_v``)."""
        cols = self._key_columns()
        data = self._sorted(name)
        bounds = np.append(self._starts, self.table.n_rows)
        out = np.empty(self.n_groups, dtype=np.float64)
        for i in range(self.n_groups):
            out[i] = fn(data[bounds[i] : bounds[i + 1]])
        cols[as_name or f"{name}_apply"] = out
        return ColumnTable(cols)

    def groups(self):
        """Iterate ``(key_tuple, row_indices)`` pairs (original row ids)."""
        bounds = np.append(self._starts, self.table.n_rows)
        for i in range(self.n_groups):
            key = tuple(c[self._starts[i]].item() for c in self._sorted_keys)
            yield key, self._order[bounds[i] : bounds[i + 1]]
