"""Process-parallel execution of per-snapshot analyses (public API).

The paper's Spark jobs are per-snapshot-partition parallel; our equivalent
fans a pure function over the snapshot collection through
:class:`repro.query.engine.ExecutionEngine`.  Workers receive the columns
either by copy-on-write inheritance (``fork``) or through a shared-memory
segment (``spawn`` / ``forkserver`` — see :mod:`repro.query.shm`), so the
multi-gigabyte columns are never pickled under any start method.

Failure semantics: a task that raises (or a worker that dies, when a
``task_timeout`` watchdog is configured) surfaces as a structured
:class:`~repro.query.engine.TaskError` carrying the snapshot index and the
worker traceback.  Any fallback to serial execution is warned about and
recorded in the run's :class:`~repro.query.engine.ExecutionStats` — never
silent.  Set ``$REPRO_START_METHOD`` to pin the start method suite-wide
(``fork`` / ``spawn`` / ``forkserver`` / ``serial``).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any, TypeVar

from repro.core.runcontrol import RunController, RunInterrupted
from repro.query.engine import (
    DeltaPlan,
    EngineConfig,
    ExecutionEngine,
    ExecutionStats,
    Kernel,
    TaskError,
)
from repro.scan.snapshot import Snapshot, SnapshotCollection

__all__ = [
    "DeltaPlan",
    "EngineConfig",
    "ExecutionStats",
    "Kernel",
    "RunController",
    "RunInterrupted",
    "SnapshotExecutor",
    "TaskError",
    "snapshot_map",
]

T = TypeVar("T")


def snapshot_map(
    collection: SnapshotCollection,
    fn: Callable[[Snapshot], T],
    processes: int | None = None,
    start_method: str | None = None,
) -> list[T]:
    """Apply ``fn`` to every snapshot; returns results in snapshot order.

    ``processes=None`` picks a sensible default (half the cores, capped at
    the snapshot count); ``processes=1`` forces serial execution.  Under
    ``fork`` closures work (workers inherit them); under ``spawn`` the
    function must be picklable — if it is not, the map runs serial with a
    ``RuntimeWarning`` rather than failing or silently misbehaving.
    """
    engine = ExecutionEngine(
        EngineConfig(processes=processes, start_method=start_method)
    )
    results, _ = engine.map(collection, fn)
    return results


class SnapshotExecutor:
    """Reusable executor with a fixed parallelism policy.

    The analysis suite takes one of these so callers choose the policy once
    (``SnapshotExecutor(processes=1)`` in unit tests, parallel in benches).
    After every map the run's :class:`ExecutionStats` is available as
    ``last_stats``, and ``stats`` keeps the lifetime aggregate across runs.
    """

    def __init__(
        self,
        processes: int | None = 1,
        start_method: str | None = None,
        retries: int = 0,
        retry_backoff: float = 0.0,
        chunk_size: int | None = None,
        task_timeout: float | None = None,
    ) -> None:
        self.processes = processes
        self._engine = ExecutionEngine(
            EngineConfig(
                processes=processes,
                start_method=start_method,
                chunk_size=chunk_size,
                retries=retries,
                retry_backoff=retry_backoff,
                task_timeout=task_timeout,
            )
        )
        self.last_stats: ExecutionStats | None = None
        self.stats = ExecutionStats()

    @property
    def config(self) -> EngineConfig:
        return self._engine.config

    def _record(self, stats: ExecutionStats) -> None:
        self.last_stats = stats
        self.stats.merge(stats)

    def _collect(self, run: Callable[[], tuple[list[Any], ExecutionStats]]) -> list[Any]:
        try:
            results, stats = run()
        except TaskError as err:
            if err.stats is not None:
                self._record(err.stats)
            raise
        self._record(stats)
        return results

    def map(
        self, collection: SnapshotCollection, fn: Callable[[Snapshot], T]
    ) -> list[T]:
        return self._collect(lambda: self._engine.map(collection, fn))

    def map_pairs(
        self,
        collection: SnapshotCollection,
        fn: Callable[[Snapshot, Snapshot], T],
    ) -> list[T]:
        """Apply ``fn`` to adjacent snapshot pairs (weekly diffs), ordered."""
        return self._collect(lambda: self._engine.map_pairs(collection, fn))

    def run_kernels(
        self,
        collection: SnapshotCollection,
        kernels: Sequence[Kernel],
        journal: Any = None,
        controller: RunController | None = None,
        max_task_failures: int | None = None,
        delta_plan: DeltaPlan | None = None,
    ) -> dict[str, Any]:
        """Run every kernel against each snapshot in one fused pass.

        Each snapshot is loaded (and, under ``spawn``, exported to shared
        memory) exactly once; all kernel map functions evaluate against the
        resident snapshot before the pass moves on.  Returns
        ``{kernel.name: reduce result}``; per-kernel timings land in
        ``last_stats``.  ``journal`` (a
        :class:`~repro.query.journal.KernelJournal`) checkpoints completed
        snapshots durably and restores them on a rerun.  ``controller``
        makes the pass interruptible (deadline / signals → graceful
        :class:`RunInterrupted` with a flushed checkpoint);
        ``max_task_failures`` arms the per-snapshot circuit breaker;
        ``delta_plan`` (a :class:`DeltaPlan`) switches state-bearing kernels
        onto delta replay (see
        :meth:`~repro.query.engine.ExecutionEngine.run_kernels`).
        """
        try:
            results, stats = self._engine.run_kernels(
                collection,
                kernels,
                journal=journal,
                controller=controller,
                max_task_failures=max_task_failures,
                delta_plan=delta_plan,
            )
        except (TaskError, RunInterrupted) as err:
            if err.stats is not None:
                self._record(err.stats)
            raise
        self._record(stats)
        return results
