"""Process-parallel execution of per-snapshot analyses.

The paper's Spark jobs are per-snapshot-partition parallel; our equivalent
fans a pure function over the snapshot collection with a fork-based process
pool.  Fork start gives the workers a copy-on-write view of the snapshot
arrays — no pickling of the multi-gigabyte columns, matching the "analyze
the data in place" goal of the paper's framework (§3).

Falls back to serial execution on platforms without ``fork`` or when
``processes=1``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

from repro.scan.snapshot import Snapshot, SnapshotCollection

T = TypeVar("T")

# Module-level slot read by forked workers (copy-on-write inheritance).
_WORK_COLLECTION: SnapshotCollection | None = None
_WORK_FN: Callable[[Snapshot], Any] | None = None


def _worker(index: int) -> Any:
    assert _WORK_COLLECTION is not None and _WORK_FN is not None
    return _WORK_FN(_WORK_COLLECTION[index])


def _fork_available() -> bool:
    return "fork" in mp.get_all_start_methods()


def snapshot_map(
    collection: SnapshotCollection,
    fn: Callable[[Snapshot], T],
    processes: int | None = None,
) -> list[T]:
    """Apply ``fn`` to every snapshot; returns results in snapshot order.

    ``processes=None`` picks a sensible default (half the cores, capped at
    the snapshot count); ``processes=1`` forces serial execution.  ``fn``
    must be a module-level function when running in parallel (fork workers
    re-reference it by the inherited module state, so closures work too —
    but it must not mutate shared state).
    """
    n = len(collection)
    if n == 0:
        return []
    if processes is None:
        processes = max(1, min(n, (os.cpu_count() or 2) // 2))
    if processes <= 1 or not _fork_available():
        return [fn(snap) for snap in collection]
    global _WORK_COLLECTION, _WORK_FN
    _WORK_COLLECTION, _WORK_FN = collection, fn
    try:
        ctx = mp.get_context("fork")
        with ctx.Pool(processes=processes) as pool:
            return pool.map(_worker, range(n))
    finally:
        _WORK_COLLECTION, _WORK_FN = None, None


class SnapshotExecutor:
    """Reusable executor with a fixed parallelism policy.

    The analysis suite takes one of these so callers choose the policy once
    (`SnapshotExecutor(processes=1)` in unit tests, parallel in benches).
    """

    def __init__(self, processes: int | None = 1) -> None:
        self.processes = processes

    def map(self, collection: SnapshotCollection, fn: Callable[[Snapshot], T]) -> list[T]:
        return snapshot_map(collection, fn, processes=self.processes)

    def map_pairs(
        self,
        collection: SnapshotCollection,
        fn: Callable[[Snapshot, Snapshot], T],
    ) -> list[T]:
        """Apply ``fn`` to adjacent snapshot pairs (weekly diffs).

        Pair analyses reuse the same fork trick: the collection and the pair
        function are parked in module globals before the fork, and workers
        are dispatched plain integer indices.
        """
        n = len(collection)
        if n < 2:
            return []
        indices: Sequence[int] = range(1, n)
        if (self.processes or 1) <= 1 or not _fork_available():
            return [fn(collection[i - 1], collection[i]) for i in indices]
        global _WORK_COLLECTION, _PAIR_FN
        _WORK_COLLECTION, _PAIR_FN = collection, fn
        try:
            ctx = mp.get_context("fork")
            with ctx.Pool(processes=self.processes) as pool:
                return pool.map(_pair_worker, indices)
        finally:
            _WORK_COLLECTION, _PAIR_FN = None, None


_PAIR_FN: Callable[[Snapshot, Snapshot], Any] | None = None


def _pair_worker(index: int) -> Any:
    assert _WORK_COLLECTION is not None and _PAIR_FN is not None
    return _PAIR_FN(_WORK_COLLECTION[index - 1], _WORK_COLLECTION[index])
