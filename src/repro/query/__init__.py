"""Vectorized columnar query engine — the SparkSQL substitute.

The paper runs its analyses as SparkSQL jobs over Parquet snapshots on a
32-node cluster (§3).  The analyses themselves are column scans, filters,
group-by aggregations, and joins; :class:`~repro.query.table.ColumnTable`
provides exactly those, vectorized over NumPy arrays, and
:mod:`repro.query.parallel` fans independent per-snapshot queries out over a
process pool — zero-copy under ``fork`` (copy-on-write) *and* under
``spawn`` (a shared-memory column transport, :mod:`repro.query.shm`) —
mirroring Spark's per-partition parallelism at laptop scale.  The engine
(:mod:`repro.query.engine`) surfaces worker failures as structured
:class:`TaskError`\\ s and accumulates per-task :class:`ExecutionStats`.
"""

from repro.query.engine import (
    EngineConfig,
    ExecutionEngine,
    ExecutionStats,
    Kernel,
    TaskError,
)
from repro.query.parallel import SnapshotExecutor, snapshot_map
from repro.query.table import ColumnTable, GroupBy

__all__ = [
    "ColumnTable",
    "EngineConfig",
    "ExecutionEngine",
    "ExecutionStats",
    "GroupBy",
    "Kernel",
    "SnapshotExecutor",
    "TaskError",
    "snapshot_map",
]
