"""Vectorized columnar query engine — the SparkSQL substitute.

The paper runs its analyses as SparkSQL jobs over Parquet snapshots on a
32-node cluster (§3).  The analyses themselves are column scans, filters,
group-by aggregations, and joins; :class:`~repro.query.table.ColumnTable`
provides exactly those, vectorized over NumPy arrays, and
:mod:`repro.query.parallel` fans independent per-snapshot queries out over a
process pool (fork-based, zero-copy via copy-on-write), mirroring Spark's
per-partition parallelism at laptop scale.
"""

from repro.query.table import ColumnTable, GroupBy
from repro.query.parallel import SnapshotExecutor, snapshot_map

__all__ = ["ColumnTable", "GroupBy", "SnapshotExecutor", "snapshot_map"]
