"""Shared-memory transport for snapshot collections.

Under the ``fork`` start method, pool workers inherit the parent's snapshot
arrays copy-on-write, so handing them work is free.  ``spawn`` workers start
from a blank interpreter: anything they need must either be pickled (a full
copy per worker) or placed in OS shared memory once and attached by name.
This module implements the latter, so the parallel engine runs identically
under both start methods.

One :class:`~multiprocessing.shared_memory.SharedMemory` segment holds every
numeric column of every snapshot, then the path table's derived columns
(component depth, extension id), then the interned path strings as a single
newline-joined UTF-8 blob.  The :class:`CollectionHandle` is the small
picklable description of that layout (segment name + offsets); a worker
attaches the segment and rebuilds zero-copy, read-only NumPy views over the
mapped buffer — the column data itself is never pickled and exists exactly
once in physical memory regardless of the worker count.

Lifecycle: the parent owns the segment.  :func:`export_collection` creates
it and returns a :class:`CollectionExport` whose :meth:`~CollectionExport.destroy`
(or ``with`` block) closes and unlinks it once the pool is done.  Workers
only ever attach; the single shared resource-tracker entry is cleared by
the parent's unlink.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.scan.extensions import ExtensionTable
from repro.scan.snapshot import (
    COLUMN_DTYPES,
    NUMERIC_COLUMNS,
    Snapshot,
    SnapshotCollection,
)

_ALIGN = 8


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SnapshotSpec:
    """Where one snapshot's columns live inside the segment."""

    label: str
    timestamp: int
    rows: int
    #: byte offsets, one per :data:`NUMERIC_COLUMNS` entry, in order
    offsets: tuple[int, ...]


@dataclass(frozen=True)
class CollectionHandle:
    """Picklable description of an exported collection.

    This is all a spawn worker receives; everything heavy stays in the
    named shared-memory segment.
    """

    segment: str
    snapshots: tuple[SnapshotSpec, ...]
    n_paths: int
    depth_offset: int
    ext_id_offset: int
    strings_offset: int
    strings_nbytes: int
    extensions: ExtensionTable
    total_nbytes: int


class CollectionExport:
    """Parent-side owner of the shared segment (context manager)."""

    def __init__(self, handle: CollectionHandle, shm: shared_memory.SharedMemory) -> None:
        self.handle = handle
        self._shm = shm

    @property
    def nbytes(self) -> int:
        return self.handle.total_nbytes

    def destroy(self) -> None:
        """Close the local mapping and unlink the segment (idempotent)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "CollectionExport":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.destroy()


def export_collection(collection: SnapshotCollection) -> CollectionExport:
    """Copy a collection's columns into one shared-memory segment.

    This is the only copy the spawn path ever makes: each column is written
    once, and every worker maps the same physical pages.

    Works for lazy disk-backed collections too: the ``getattr`` per column
    is what triggers each block's one and only decode (through the store's
    accounted cache), after which the segment serves every kernel of every
    dispatch wave — the engine gates this on the memory budget via
    ``_shm_affordable``.
    """
    plan: list[tuple[int, np.ndarray]] = []
    specs: list[SnapshotSpec] = []
    offset = 0
    for snap in collection:
        offsets = []
        for name in NUMERIC_COLUMNS:
            col = np.ascontiguousarray(getattr(snap, name))
            offset = _aligned(offset)
            offsets.append(offset)
            plan.append((offset, col))
            offset += col.nbytes
        specs.append(
            SnapshotSpec(
                label=snap.label,
                timestamp=int(snap.timestamp),
                rows=len(snap),
                offsets=tuple(offsets),
            )
        )
    paths = collection.paths
    n_paths = len(paths)
    depth = np.ascontiguousarray(paths.depth[:n_paths])
    ext_id = np.ascontiguousarray(paths.ext_id[:n_paths])
    offset = _aligned(offset)
    depth_offset = offset
    plan.append((offset, depth))
    offset += depth.nbytes
    offset = _aligned(offset)
    ext_id_offset = offset
    plan.append((offset, ext_id))
    offset += ext_id.nbytes
    blob = "\n".join(paths.paths).encode("utf-8")
    offset = _aligned(offset)
    strings_offset = offset
    offset += len(blob)
    total = max(offset, 1)  # zero-size segments are not allowed
    shm = shared_memory.SharedMemory(create=True, size=total)
    for off, arr in plan:
        if arr.size:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            dst[:] = arr
    if blob:
        shm.buf[strings_offset : strings_offset + len(blob)] = blob
    handle = CollectionHandle(
        segment=shm.name,
        snapshots=tuple(specs),
        n_paths=n_paths,
        depth_offset=depth_offset,
        ext_id_offset=ext_id_offset,
        strings_offset=strings_offset,
        strings_nbytes=len(blob),
        extensions=paths.extensions,
        total_nbytes=total,
    )
    return CollectionExport(handle, shm)


def _view(
    shm: shared_memory.SharedMemory, offset: int, dtype: Any, rows: int
) -> np.ndarray:
    arr = np.ndarray((rows,), dtype=dtype, buffer=shm.buf, offset=offset)
    arr.flags.writeable = False
    return arr


class SharedPathTable:
    """Worker-side, read-only stand-in for :class:`~repro.scan.paths.PathTable`.

    Covers the surface the snapshot analyses use — ``depths_of`` /
    ``ext_ids_of`` gathers, path/extension lookups — over shared-memory
    views.  Path *strings* are decoded lazily on first use; most
    per-snapshot functions only touch the numeric derived columns and never
    pay for the blob decode.
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: CollectionHandle) -> None:
        self._shm = shm
        self._n = handle.n_paths
        self.extensions = handle.extensions
        self.depth = _view(shm, handle.depth_offset, np.int16, self._n)
        self.ext_id = _view(shm, handle.ext_id_offset, np.int32, self._n)
        self._strings_span = (handle.strings_offset, handle.strings_nbytes)
        self._paths: list[str] | None = None
        self._ids: dict[str, int] | None = None

    @property
    def paths(self) -> list[str]:
        if self._paths is None:
            off, nbytes = self._strings_span
            text = bytes(self._shm.buf[off : off + nbytes]).decode("utf-8")
            self._paths = text.split("\n") if text else []
        return self._paths

    def depths_of(self, pids: np.ndarray) -> np.ndarray:
        return self.depth[pids].astype(np.int64)

    def ext_ids_of(self, pids: np.ndarray) -> np.ndarray:
        return self.ext_id[pids].astype(np.int64)

    def path_of(self, pid: int) -> str:
        return self.paths[pid]

    def id_of(self, path: str) -> int | None:
        if self._ids is None:
            self._ids = {p: i for i, p in enumerate(self.paths)}
        return self._ids.get(path)

    def component(self, pid: int, index: int) -> str | None:
        parts = self.paths[pid].strip("/").split("/")
        if 0 <= index < len(parts):
            return parts[index]
        return None

    def intern(self, path: str) -> int:
        raise TypeError("shared path table is read-only; intern in the parent")

    intern_with_depth = intern
    intern_many = intern

    def __len__(self) -> int:
        return self._n

    def __contains__(self, path: str) -> bool:
        return self.id_of(path) is not None


def attach_collection(
    handle: CollectionHandle,
) -> tuple[SnapshotCollection, shared_memory.SharedMemory]:
    """Rebuild a zero-copy view of an exported collection in this process.

    Returns the collection plus the mapped segment; the caller must keep the
    segment referenced for as long as the views are used (the worker context
    does) and ``close()`` it when done.  The mapping is unregistered from the
    resource tracker because the exporting parent owns the segment's
    lifecycle.
    """
    # Note on the resource tracker: pool workers (fork and spawn alike)
    # inherit the parent's tracker, whose registry is a set — the attach-side
    # re-registration is a no-op and the parent's unlink clears the single
    # entry.  No per-worker unregister is needed (doing one would make the
    # parent's unlink a double-unregister).
    shm = shared_memory.SharedMemory(name=handle.segment)
    table = SharedPathTable(shm, handle)
    collection = SnapshotCollection(paths=table)  # type: ignore[arg-type]
    for spec in handle.snapshots:
        columns = {
            name: _view(shm, off, COLUMN_DTYPES[name], spec.rows)
            for name, off in zip(NUMERIC_COLUMNS, spec.offsets)
        }
        collection.append(
            Snapshot.from_attached_columns(spec.label, spec.timestamp, table, columns)
        )
    return collection, shm
