"""Shard supervisor: drives sharded synthesis workers to completion.

One :class:`ShardSupervisor` owns the failure model of a sharded run
(:mod:`repro.synth.sharding`) end to end:

* **workers** run on the engine's start-method policy (``fork``/``spawn``/
  ``forkserver`` via ``REPRO_START_METHOD`` or config; ``serial`` and
  ``workers=0`` run shards inline) as daemon processes, at most
  ``workers`` at a time;
* **checkpoints** — each worker journals every written week (fsynced), so
  the supervisor restarts a dead worker and the new attempt re-simulates
  deterministically, skipping the weeks already on disk;
* **crash restarts** — a nonzero exit (SIGKILL included) re-queues the
  shard with exponential backoff, up to ``max_attempts`` per shard;
* **straggler detection** — the journal file is the progress heartbeat: a
  shard whose journal stops growing for ``stall_timeout_seconds`` gets a
  ``RuntimeWarning``; each attempt also runs under a
  ``RunController.child`` deadline (``shard_max_seconds``) whose expiry
  kills the worker and counts as a failed attempt (→ restart, then
  quarantine);
* **quarantine** — a shard that exhausts its attempts is quarantined:
  under ``on_error="raise"`` the run fails fast with a typed
  :class:`ShardFailedError`; under ``skip``/``quarantine`` the shard is
  recorded (the caller folds it into the ``ArchiveHealthReport``) and the
  rest of the run proceeds;
* **global stop** — the parent :class:`RunController`'s deadline/signal
  cancels every outstanding worker and raises ``RunInterrupted`` with a
  resume hint (per-shard journals make a re-run cheap).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import warnings
from collections import deque
from dataclasses import dataclass, field

from pathlib import Path

from repro.core.runcontrol import RunController, RunInterrupted
from repro.query.engine import START_METHOD_ENV, SERIAL
from repro.synth.sharding import (
    SHARD_JOURNAL_NAME,
    ShardFault,
    ShardPlan,
    shard_complete,
    shard_worker_entry,
    simulate_shard,
)
from repro.scan.merge import shard_dir


class ShardFailedError(RuntimeError):
    """A shard exhausted its attempt budget (typed quarantine failure)."""

    def __init__(self, shard: int, attempts: int, reason: str) -> None:
        self.shard = shard
        self.attempts = attempts
        self.reason = reason
        super().__init__(
            f"shard {shard} failed after {attempts} attempts: {reason}"
        )


@dataclass(frozen=True)
class ShardQuarantine:
    """One persistently failing shard and why it was given up on."""

    shard: int
    attempts: int
    reason: str


@dataclass(frozen=True)
class SupervisorConfig:
    """Failure-model knobs of one sharded run."""

    #: concurrent worker processes; 0 = run every shard inline
    workers: int = 0
    #: multiprocessing start method (None → REPRO_START_METHOD → fork)
    start_method: str | None = None
    #: attempt ceiling per shard before quarantine
    max_attempts: int = 3
    #: restart backoff: ``backoff_seconds * 2**(attempt-1)``, capped
    backoff_seconds: float = 0.25
    backoff_max_seconds: float = 5.0
    #: heartbeat watchdog: warn when a shard's journal stalls this long
    stall_timeout_seconds: float = 30.0
    #: per-attempt deadline (via ``RunController.child``); None = no limit
    shard_max_seconds: float | None = None
    poll_seconds: float = 0.05


@dataclass
class SupervisorStats:
    """What the run cost and what happened to every shard."""

    n_shards: int = 0
    completed: int = 0
    restarts: int = 0
    stall_warnings: int = 0
    quarantined: list[int] = field(default_factory=list)
    attempts: dict[int, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def summary(self) -> str:
        extra = ""
        if self.quarantined:
            extra = f", quarantined {sorted(self.quarantined)}"
        return (
            f"{self.completed}/{self.n_shards} shards completed in "
            f"{self.wall_seconds:.1f}s ({self.restarts} restarts, "
            f"{self.stall_warnings} stall warnings{extra})"
        )


class _ShardTask:
    """Internal per-shard bookkeeping (attempts, process, heartbeat)."""

    def __init__(self, shard: int, journal_path: Path) -> None:
        self.shard = shard
        self.journal_path = journal_path
        self.attempts = 0
        self.proc: mp.process.BaseProcess | None = None
        self.deadline: RunController | None = None
        self.last_size = -1
        self.last_progress = 0.0
        self.stall_warned = False
        self.ready_at = 0.0


class ShardSupervisor:
    """Runs every shard of a :class:`ShardPlan` to done-or-quarantined."""

    def __init__(
        self,
        plan: ShardPlan,
        parts_root: str | Path,
        config: SupervisorConfig | None = None,
        controller: RunController | None = None,
        faults: list[ShardFault] | None = None,
        on_error: str = "raise",
        format_version: int | None = None,
    ) -> None:
        if on_error not in ("raise", "skip", "quarantine"):
            raise ValueError(f"unknown on_error policy {on_error!r}")
        self.plan = plan
        self.parts_root = Path(parts_root)
        self.config = config or SupervisorConfig()
        self.controller = controller or RunController()
        self.faults = {f.shard: f for f in (faults or [])}
        self.on_error = on_error
        self.format_version = format_version
        self.stats = SupervisorStats(n_shards=plan.n_shards)
        self.quarantines: list[ShardQuarantine] = []
        self._running: dict[int, _ShardTask] = {}

    # -- observation (the fault injectors use these) ------------------------

    def worker_pids(self) -> dict[int, int]:
        """Live ``{shard: pid}`` — the SIGKILL injector's target list."""
        return {
            shard: task.proc.pid
            for shard, task in self._running.items()
            if task.proc is not None
            and task.proc.pid is not None
            and task.proc.is_alive()
        }

    # -- policy -------------------------------------------------------------

    def _resolve_start_method(self) -> str:
        method = (
            self.config.start_method
            or os.environ.get(START_METHOD_ENV)
            or ""
        ).strip().lower()
        if not method:
            return "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        if method == SERIAL:
            return SERIAL
        if method not in mp.get_all_start_methods():
            raise ValueError(
                f"start method {method!r} not available here "
                f"(have {mp.get_all_start_methods()})"
            )
        return method

    # -- entry point --------------------------------------------------------

    def run(self) -> SupervisorStats:
        t0 = time.monotonic()
        try:
            method = self._resolve_start_method()
            if self.config.workers <= 0 or method == SERIAL:
                self._run_inline()
            else:
                self._run_processes(method)
        finally:
            self.stats.wall_seconds = time.monotonic() - t0
        return self.stats

    # -- inline mode --------------------------------------------------------

    def _run_inline(self) -> None:
        for shard in range(self.plan.n_shards):
            while True:
                self.stats.attempts[shard] = self.stats.attempts.get(shard, 0) + 1
                attempt = self.stats.attempts[shard]
                try:
                    simulate_shard(
                        self.plan,
                        shard,
                        self.parts_root,
                        attempt=attempt,
                        fault=self.faults.get(shard),
                        format_version=self.format_version,
                        controller=self.controller,
                    )
                except RunInterrupted:
                    raise
                except Exception as exc:  # noqa: BLE001 - the failure model
                    if attempt >= self.config.max_attempts:
                        self._quarantine(shard, attempt, repr(exc))
                        break
                    self.stats.restarts += 1
                    time.sleep(self._backoff(attempt))
                    continue
                self.stats.completed += 1
                break

    # -- process mode -------------------------------------------------------

    def _run_processes(self, method: str) -> None:
        ctx = mp.get_context(method)
        pending: deque[_ShardTask] = deque(
            _ShardTask(
                shard, shard_dir(self.parts_root, shard) / SHARD_JOURNAL_NAME
            )
            for shard in range(self.plan.n_shards)
        )
        waiting: list[_ShardTask] = []
        try:
            while pending or waiting or self._running:
                reason = self.controller.should_stop()
                if reason is not None:
                    raise RunInterrupted(
                        f"sharded simulation interrupted ({reason}): "
                        f"{self.stats.completed}/{self.plan.n_shards} "
                        "shards completed",
                        reason=reason,
                        partial=self.stats,
                        resume_hint=(
                            "re-run the same command: per-shard journals "
                            "resume each shard from its completed weeks"
                        ),
                    )
                now = time.monotonic()
                for task in [t for t in waiting if t.ready_at <= now]:
                    waiting.remove(task)
                    pending.append(task)
                while pending and len(self._running) < self.config.workers:
                    self._launch(ctx, pending.popleft())
                time.sleep(self.config.poll_seconds)
                now = time.monotonic()
                for shard, task in list(self._running.items()):
                    proc = task.proc
                    if proc.is_alive():
                        failure = self._check_progress(task, now)
                        if failure is None:
                            continue
                        proc.kill()
                        proc.join()
                    else:
                        proc.join()
                        if proc.exitcode == 0 and shard_complete(
                            self.plan, shard, self.parts_root
                        ):
                            del self._running[shard]
                            self.stats.completed += 1
                            continue
                        failure = f"worker died (exit code {proc.exitcode})"
                    del self._running[shard]
                    if task.attempts >= self.config.max_attempts:
                        self._quarantine(shard, task.attempts, failure)
                    else:
                        self.stats.restarts += 1
                        task.ready_at = now + self._backoff(task.attempts)
                        waiting.append(task)
        finally:
            self._terminate_all()

    def _launch(self, ctx, task: _ShardTask) -> None:
        task.attempts += 1
        self.stats.attempts[task.shard] = task.attempts
        fault = self.faults.get(task.shard)
        task.proc = ctx.Process(
            target=shard_worker_entry,
            args=(
                self.plan,
                task.shard,
                str(self.parts_root),
                task.attempts,
                fault,
                self.format_version,
            ),
            daemon=True,
            name=f"repro-shard-{task.shard:04d}",
        )
        task.deadline = (
            self.controller.child(self.config.shard_max_seconds)
            if self.config.shard_max_seconds is not None
            else None
        )
        task.proc.start()
        task.last_size = self._journal_size(task)
        task.last_progress = time.monotonic()
        task.stall_warned = False
        self._running[task.shard] = task

    @staticmethod
    def _journal_size(task: _ShardTask) -> int:
        try:
            return task.journal_path.stat().st_size
        except OSError:
            return 0

    def _check_progress(self, task: _ShardTask, now: float) -> str | None:
        """Heartbeat + deadline; returns a failure reason to kill on."""
        size = self._journal_size(task)
        if size != task.last_size:
            task.last_size = size
            task.last_progress = now
            task.stall_warned = False
        elif (
            now - task.last_progress > self.config.stall_timeout_seconds
            and not task.stall_warned
        ):
            task.stall_warned = True
            self.stats.stall_warnings += 1
            warnings.warn(
                f"shard {task.shard} has made no checkpoint progress for "
                f"{now - task.last_progress:.1f}s (straggler?) — deadline "
                "will restart it",
                RuntimeWarning,
                stacklevel=2,
            )
        if task.deadline is not None and task.deadline.should_stop() is not None:
            return (
                "shard deadline expired "
                f"(--shard-max-seconds {self.config.shard_max_seconds:g})"
            )
        return None

    def _backoff(self, attempt: int) -> float:
        return min(
            self.config.backoff_seconds * 2 ** (attempt - 1),
            self.config.backoff_max_seconds,
        )

    def _quarantine(self, shard: int, attempts: int, reason: str) -> None:
        quarantine = ShardQuarantine(shard=shard, attempts=attempts, reason=reason)
        self.quarantines.append(quarantine)
        self.stats.quarantined.append(shard)
        if self.on_error == "raise":
            raise ShardFailedError(shard, attempts, reason)
        warnings.warn(
            f"shard {shard} quarantined after {attempts} attempts: {reason}",
            RuntimeWarning,
            stacklevel=2,
        )

    def _terminate_all(self) -> None:
        for task in self._running.values():
            if task.proc is not None and task.proc.is_alive():
                task.proc.kill()
        for task in self._running.values():
            if task.proc is not None:
                task.proc.join()
        self._running.clear()
