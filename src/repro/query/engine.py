"""Crash-safe parallel execution engine for per-snapshot analyses.

The paper ran its analyses as per-snapshot-partition Spark jobs (§3); this
engine is the local equivalent: it fans a pure function over a snapshot
collection with a process pool and gives the run the properties a scan
subsystem needs in production:

* **start-method portability** — under ``fork`` workers inherit the columns
  copy-on-write; under ``spawn`` (and ``forkserver``) the columns travel
  through a shared-memory segment (:mod:`repro.query.shm`) and only a small
  handle is pickled.  The engine works the same either way.
* **re-entrant scheduling** — tasks are integer indices batched into chunks
  and dispatched through ``imap_unordered``; results are reassembled in
  snapshot order.  All run state lives in an engine-local context, so
  concurrent or nested maps never trample each other (the old module-global
  handoff could).  A map issued *inside* a worker (daemonic processes cannot
  fork) transparently runs serial.
* **fault handling** — a task that raises is retried up to
  ``EngineConfig.retries`` times in the worker; when retries are exhausted a
  structured :class:`TaskError` carrying the snapshot index and the worker
  traceback is raised in the parent — never a hang, never a silent partial
  result.  A worker that dies outright is caught by the optional
  ``task_timeout`` watchdog.  Any *downgrade* to serial execution (no usable
  start method, unpicklable work under spawn) is warned about and recorded
  in the stats, never silent.
* **observability** — every run accumulates per-task wall time, bytes
  touched, retry/failure counts, and pool utilization into an
  :class:`ExecutionStats`, exposed by
  :class:`~repro.query.parallel.SnapshotExecutor` and printed by the bench
  harness.
* **kernel fusion** — :meth:`ExecutionEngine.run_kernels` executes many
  analyses in a *single* pass over the collection.  Each :class:`Kernel`
  contributes a per-snapshot (or per-adjacent-pair) ``map_fn`` whose
  partials are gathered in the worker while the snapshot is resident, plus
  a parent-side ``reduce_fn`` folding the ordered partials into the final
  result.  One fused task per snapshot evaluates every registered kernel
  before the engine moves on, so a disk-backed collection is loaded once
  per snapshot instead of once per analysis; kernels that share a
  ``map_fn`` share one evaluation.  Per-kernel busy time and
  parent-visible snapshot loads land in the run's :class:`ExecutionStats`.

The chosen start method defaults to ``$REPRO_START_METHOD`` when set
(``fork`` / ``spawn`` / ``forkserver`` / ``serial``), else ``fork`` where
available, else ``spawn``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
import traceback
import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.query import shm as shm_transport
from repro.scan.snapshot import SnapshotCollection

#: Environment variable consulted when ``EngineConfig.start_method`` is None.
START_METHOD_ENV = "REPRO_START_METHOD"

#: Pseudo start method: run everything inline in the calling process.
SERIAL = "serial"

#: Execution modes used by the worker context (internal).
_MODE_MAP = "map"
_MODE_PAIRS = "pairs"
_MODE_FUSED = "fused"


@dataclass(frozen=True)
class Kernel:
    """One analysis expressed as a map/reduce pair over a snapshot series.

    Parameters
    ----------
    name:
        Unique key within one :meth:`ExecutionEngine.run_kernels` call; the
        result dict and the per-kernel stats are keyed by it.
    map_fn:
        ``snapshot -> partial`` (or ``(prev, cur) -> partial`` when
        ``pairwise``).  Runs in the workers, so it must be a module-level
        callable for the spawn transport; kernels passing the *same*
        function object share a single evaluation per snapshot, and the
        shared partial must therefore not be mutated by any reducer.
    reduce_fn:
        ``list[partial] -> result`` over the partials in snapshot order
        (pair kernels receive one partial per adjacent pair).  Runs in the
        parent, so closures — e.g. over an analysis context — are fine.
    pairwise:
        When True, ``map_fn`` sees adjacent ``(prev, cur)`` snapshot pairs
        riding the same sliding two-snapshot window the per-snapshot
        kernels keep resident.
    """

    name: str
    map_fn: Callable[..., Any]
    reduce_fn: Callable[[list[Any]], Any]
    pairwise: bool = False


class TaskError(RuntimeError):
    """A snapshot task failed (worker exception, crash, or watchdog timeout).

    Attributes
    ----------
    index:
        Snapshot index of the failing task (None if unattributable, e.g. a
        dead worker whose chunk never reported).
    traceback_text:
        The worker-side traceback, verbatim.
    stats:
        The :class:`ExecutionStats` accumulated up to the failure.
    """

    def __init__(
        self,
        message: str,
        index: int | None = None,
        traceback_text: str = "",
        stats: "ExecutionStats | None" = None,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.traceback_text = traceback_text
        self.stats = stats

    def __str__(self) -> str:  # keep the worker traceback visible to callers
        base = super().__str__()
        if self.traceback_text:
            return f"{base}\n--- worker traceback ---\n{self.traceback_text}"
        return base


@dataclass
class ExecutionStats:
    """Accumulated observability for one run (or merged across runs)."""

    runs: int = 0
    n_tasks: int = 0
    processes: int = 1
    start_method: str = SERIAL
    transport: str = "inline"
    wall_seconds: float = 0.0
    task_seconds: float = 0.0
    bytes_touched: int = 0
    retries: int = 0
    failures: int = 0
    #: fused runs: tasks restored from a checkpoint journal instead of run
    restored_tasks: int = 0
    downgraded: bool = False
    downgrade_reason: str = ""
    #: per-task wall seconds, in completion order
    task_wall: list[float] = field(default_factory=list)
    #: fused runs: per-kernel busy seconds in the map phase (worker-side)
    kernel_map_seconds: dict[str, float] = field(default_factory=dict)
    #: fused runs: per-kernel reduce seconds (parent-side)
    kernel_reduce_seconds: dict[str, float] = field(default_factory=dict)
    #: snapshot loads observed on the collection's ``loads`` counter in the
    #: parent process during the run (0 for collections without a counter;
    #: worker-side loads under fork/spawn are not visible here)
    snapshot_loads: int = 0

    @property
    def utilization(self) -> float:
        """Busy fraction of the pool: Σ task time / (wall × processes)."""
        denom = self.wall_seconds * max(1, self.processes)
        return self.task_seconds / denom if denom > 0 else 0.0

    def merge(self, other: "ExecutionStats") -> None:
        """Fold another run into this aggregate (lifetime executor stats)."""
        self.runs += other.runs
        self.n_tasks += other.n_tasks
        self.processes = max(self.processes, other.processes)
        self.start_method = other.start_method
        self.transport = other.transport
        self.wall_seconds += other.wall_seconds
        self.task_seconds += other.task_seconds
        self.bytes_touched += other.bytes_touched
        self.retries += other.retries
        self.failures += other.failures
        self.restored_tasks += other.restored_tasks
        self.downgraded = self.downgraded or other.downgraded
        if other.downgrade_reason:
            self.downgrade_reason = other.downgrade_reason
        self.task_wall.extend(other.task_wall)
        for name, secs in other.kernel_map_seconds.items():
            self.kernel_map_seconds[name] = (
                self.kernel_map_seconds.get(name, 0.0) + secs
            )
        for name, secs in other.kernel_reduce_seconds.items():
            self.kernel_reduce_seconds[name] = (
                self.kernel_reduce_seconds.get(name, 0.0) + secs
            )
        self.snapshot_loads += other.snapshot_loads

    def kernel_totals(self) -> dict[str, float]:
        """Per-kernel busy seconds, map + reduce combined."""
        totals = dict(self.kernel_map_seconds)
        for name, secs in self.kernel_reduce_seconds.items():
            totals[name] = totals.get(name, 0.0) + secs
        return totals

    def summary(self) -> str:
        """One-paragraph human-readable digest (bench harness output)."""
        mean_task = self.task_seconds / self.n_tasks if self.n_tasks else 0.0
        max_task = max(self.task_wall) if self.task_wall else 0.0
        lines = [
            f"{self.n_tasks} tasks / {self.runs} runs | "
            f"{self.processes} proc via {self.start_method} ({self.transport})",
            f"wall {self.wall_seconds:.3f}s  busy {self.task_seconds:.3f}s  "
            f"utilization {self.utilization:.0%}",
            f"per-task mean {mean_task * 1e3:.1f}ms  max {max_task * 1e3:.1f}ms  "
            f"bytes touched {self.bytes_touched / 1e6:.1f}MB",
            f"retries {self.retries}  failures {self.failures}",
        ]
        if self.restored_tasks:
            lines.append(
                f"restored from checkpoint: {self.restored_tasks} tasks"
            )
        if self.snapshot_loads:
            lines.append(f"snapshot loads (parent-visible): {self.snapshot_loads}")
        if self.kernel_map_seconds or self.kernel_reduce_seconds:
            totals = self.kernel_totals()
            cells = []
            for name in sorted(totals, key=totals.get, reverse=True):
                m = self.kernel_map_seconds.get(name, 0.0)
                r = self.kernel_reduce_seconds.get(name, 0.0)
                cells.append(f"{name} {m * 1e3:.1f}+{r * 1e3:.1f}ms")
            lines.append("per-kernel map+reduce: " + "  ".join(cells))
        if self.downgraded:
            lines.append(f"DOWNGRADED to serial: {self.downgrade_reason}")
        return "\n".join(lines)


@dataclass(frozen=True)
class EngineConfig:
    """Execution policy for :class:`ExecutionEngine`.

    Parameters
    ----------
    processes:
        Worker count; None picks half the cores (capped at the task count),
        1 forces serial.
    start_method:
        ``fork`` / ``spawn`` / ``forkserver`` / ``serial``; None defers to
        ``$REPRO_START_METHOD``, then the platform default (fork where
        available).
    chunk_size:
        Tasks per scheduling unit; None targets ~4 chunks per worker.
    retries:
        Per-task in-worker retry count for raising tasks.
    retry_backoff:
        Base seconds for exponential backoff between in-worker retries
        (sleep ``retry_backoff * 2**attempt``); 0 retries immediately.
        Transient-I/O failures (EIO under load) are the target: an
        immediate retry usually hits the same condition, a backed-off one
        usually clears it.
    task_timeout:
        Watchdog seconds to wait for the *next* chunk result before
        declaring the pool dead (catches hard-crashed workers, which a
        plain ``Pool`` would otherwise wait on forever while respawning
        replacements); None disables the watchdog.  The default is generous
        — per-task analysis work here is sub-second to seconds — so a
        legitimate run never trips it.
    """

    processes: int | None = None
    start_method: str | None = None
    chunk_size: int | None = None
    retries: int = 0
    retry_backoff: float = 0.0
    task_timeout: float | None = 300.0


# -- worker side -----------------------------------------------------------
#
# Each worker process gets its context exactly once, via the pool
# initializer.  This is per-*worker* state, not parent-side handoff: the
# parent never mutates it, so engine runs are re-entrant and thread-safe.


@dataclass
class _WorkerContext:
    collection: Any
    fn: Callable[..., Any]
    mode: str
    retries: int
    retry_backoff: float = 0.0
    segment: Any = None  # keeps the shm mapping alive for the views


_WORKER: _WorkerContext | None = None


def _init_worker(payload: tuple) -> None:
    global _WORKER
    fn, mode, retries, retry_backoff, transport, data = payload
    segment = None
    if transport == "shm":
        collection, segment = shm_transport.attach_collection(data)
    else:
        collection = data
    _WORKER = _WorkerContext(
        collection=collection,
        fn=fn,
        mode=mode,
        retries=retries,
        retry_backoff=retry_backoff,
        segment=segment,
    )


def _nbytes_of(snapshot: Any) -> int:
    sizer = getattr(snapshot, "column_nbytes", None)
    return int(sizer()) if callable(sizer) else 0


def _run_fused_task(ctx: _WorkerContext, index: int) -> tuple[Any, int]:
    """All kernels' map phases against one resident snapshot (+ its
    predecessor for pair kernels).

    ``ctx.fn`` holds the shipped ``(name, map_fn, pairwise)`` triples.  The
    previous snapshot is fetched *before* the current one so an LRU-cached
    disk collection with a two-snapshot window serves the predecessor from
    cache and loads each snapshot exactly once across the pass.  Kernels
    sharing a map function share one evaluation; its cost is split evenly
    among them so per-kernel times still sum to the pass's busy time.
    """
    prev = ctx.collection[index - 1] if index > 0 else None
    cur = ctx.collection[index]
    groups: dict[tuple[Callable[..., Any], bool], list[str]] = {}
    for name, map_fn, pairwise in ctx.fn:
        groups.setdefault((map_fn, pairwise), []).append(name)
    partials: dict[str, Any] = {}
    times: dict[str, float] = {}
    nbytes = _nbytes_of(cur)
    counted_prev = False
    for (map_fn, pairwise), names in groups.items():
        if pairwise:
            if prev is None:
                continue
            if not counted_prev:
                nbytes += _nbytes_of(prev)
                counted_prev = True
            t0 = time.perf_counter()
            value = map_fn(prev, cur)
        else:
            t0 = time.perf_counter()
            value = map_fn(cur)
        share = (time.perf_counter() - t0) / len(names)
        for name in names:
            partials[name] = value
            times[name] = share
    return (partials, times), nbytes


def _run_task(ctx: _WorkerContext, index: int) -> tuple[Any, int]:
    if ctx.mode == _MODE_FUSED:
        return _run_fused_task(ctx, index)
    if ctx.mode == _MODE_PAIRS:
        prev, cur = ctx.collection[index - 1], ctx.collection[index]
        return ctx.fn(prev, cur), _nbytes_of(prev) + _nbytes_of(cur)
    snap = ctx.collection[index]
    return ctx.fn(snap), _nbytes_of(snap)


def _run_chunk(indices: Sequence[int]) -> list[tuple]:
    """Execute one chunk; every task reports (index, ok, value, secs, nbytes, retries)."""
    ctx = _WORKER
    assert ctx is not None, "worker context not initialized"
    out: list[tuple] = []
    for index in indices:
        t0 = time.perf_counter()
        used = 0
        while True:
            try:
                value, nbytes = _run_task(ctx, index)
            except Exception:
                if used < ctx.retries:
                    used += 1
                    if ctx.retry_backoff > 0:
                        time.sleep(ctx.retry_backoff * (2 ** (used - 1)))
                    continue
                out.append(
                    (index, False, traceback.format_exc(), time.perf_counter() - t0, 0, used)
                )
                break
            out.append((index, True, value, time.perf_counter() - t0, nbytes, used))
            break
    return out


# -- parent side -----------------------------------------------------------


def _available_methods() -> list[str]:
    return mp.get_all_start_methods()


class ExecutionEngine:
    """Runs per-snapshot (or per-pair) functions under one explicit policy."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig()

    # -- public API --------------------------------------------------------

    def map(
        self, collection: Any, fn: Callable[[Any], Any]
    ) -> tuple[list[Any], ExecutionStats]:
        """``[fn(s) for s in collection]`` with the configured policy + stats."""
        return self._run(collection, fn, list(range(len(collection))), _MODE_MAP)

    def map_pairs(
        self, collection: Any, fn: Callable[[Any, Any], Any]
    ) -> tuple[list[Any], ExecutionStats]:
        """``fn`` over adjacent snapshot pairs (weekly diffs), ordered."""
        return self._run(collection, fn, list(range(1, len(collection))), _MODE_PAIRS)

    def run_kernels(
        self,
        collection: Any,
        kernels: Sequence[Kernel],
        journal: Any = None,
    ) -> tuple[dict[str, Any], ExecutionStats]:
        """Run every kernel in a single fused pass over the collection.

        Each snapshot is made resident once (loaded from disk once, exported
        to shared memory once) and every kernel's map phase runs against it
        before the pass moves on; pair kernels see the sliding
        ``(prev, cur)`` window.  Returns ``{kernel.name: reduced result}``
        plus the pass's :class:`ExecutionStats`, including per-kernel
        map/reduce seconds and the parent-visible snapshot-load count.

        ``journal`` (a :class:`~repro.query.journal.KernelJournal`) makes
        the pass resumable: completed snapshot rows are appended durably as
        they arrive, and a rerun restores them instead of re-executing —
        only the first unprocessed snapshot onward runs.  Before restored
        rows are trusted, the collection's path interning is replayed in
        index order (``warm_paths``) so path ids inside restored partials
        stay consistent with live loads.
        """
        kernels = list(kernels)
        names = [k.name for k in kernels]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate kernel names: {sorted(duplicates)}")
        n = len(collection)
        if n == 0 or not kernels:
            stats = ExecutionStats(runs=1)
            return {k.name: k.reduce_fn([]) for k in kernels}, stats
        specs = tuple((k.name, k.map_fn, k.pairwise) for k in kernels)
        restored: dict[int, Any] = {}
        if journal is not None:
            restored = journal.load()
            warm = getattr(collection, "warm_paths", None)
            if restored and callable(warm):
                for index in sorted(restored):
                    warm(index)
        remaining = [i for i in range(n) if i not in restored]
        on_result = journal.append if journal is not None else None
        try:
            fresh, stats = self._run(
                collection, specs, remaining, _MODE_FUSED, on_result=on_result
            )
        finally:
            if journal is not None:
                journal.close()
        rows: dict[int, Any] = dict(restored)
        rows.update(zip(remaining, fresh))
        stats.restored_tasks = len(restored)
        for i in remaining:
            _, times = rows[i]
            for name, secs in times.items():
                stats.kernel_map_seconds[name] = (
                    stats.kernel_map_seconds.get(name, 0.0) + secs
                )
        results: dict[str, Any] = {}
        for kernel in kernels:
            start = 1 if kernel.pairwise else 0
            partials = [rows[i][0][kernel.name] for i in range(start, n)]
            t0 = time.perf_counter()
            results[kernel.name] = kernel.reduce_fn(partials)
            stats.kernel_reduce_seconds[kernel.name] = time.perf_counter() - t0
        return results, stats

    # -- policy resolution -------------------------------------------------

    def _resolve_start_method(self) -> str:
        method = self.config.start_method or os.environ.get(START_METHOD_ENV) or ""
        method = method.strip().lower()
        available = _available_methods()
        if method:
            if method == SERIAL:
                return SERIAL
            if method in available:
                return method
            raise ValueError(
                f"start method {method!r} not available here (have {available})"
            )
        if "fork" in available:
            return "fork"
        if "spawn" in available:  # pragma: no cover - non-fork platforms
            return "spawn"
        return SERIAL  # pragma: no cover - no multiprocessing at all

    def _resolve_processes(self, n_tasks: int) -> int:
        if self.config.processes is not None:
            return max(1, int(self.config.processes))
        return max(1, min(n_tasks, (os.cpu_count() or 2) // 2))

    # -- execution ---------------------------------------------------------

    def _run(
        self,
        collection: Any,
        fn: Callable[..., Any] | tuple,
        indices: list[int],
        mode: str,
        on_result: Callable[[int, Any], None] | None = None,
    ) -> tuple[list[Any], ExecutionStats]:
        """Dispatch with parent-visible snapshot-load accounting.

        ``on_result(index, value)`` fires in the *parent* as each task's
        result arrives (completion order) — the checkpoint journal's hook.
        """
        loads_before = getattr(collection, "loads", None)
        try:
            results, stats = self._dispatch(
                collection, fn, indices, mode, on_result
            )
        except TaskError as err:
            if err.stats is not None and loads_before is not None:
                err.stats.snapshot_loads += int(collection.loads) - loads_before
            raise
        if loads_before is not None:
            stats.snapshot_loads += int(collection.loads) - loads_before
        return results, stats

    def _dispatch(
        self,
        collection: Any,
        fn: Callable[..., Any] | tuple,
        indices: list[int],
        mode: str,
        on_result: Callable[[int, Any], None] | None = None,
    ) -> tuple[list[Any], ExecutionStats]:
        stats = ExecutionStats(runs=1)
        n = len(indices)
        if n == 0:
            return [], stats
        stats.n_tasks = n
        processes = self._resolve_processes(n)
        if processes <= 1:
            return self._run_serial(collection, fn, indices, mode, stats, on_result)
        method = self._resolve_start_method()
        if method == SERIAL:
            # explicit policy choice (config or $REPRO_START_METHOD=serial)
            return self._run_serial(collection, fn, indices, mode, stats, on_result)
        if mp.current_process().daemon:
            # nested map inside a pool worker: daemonic processes cannot
            # have children, run inline (recorded, not a parent-side warning)
            stats.downgraded = True
            stats.downgrade_reason = "nested map inside a daemonic worker"
            return self._run_serial(collection, fn, indices, mode, stats, on_result)

        export: shm_transport.CollectionExport | None = None
        if method == "fork":
            transport, data = "inherit", collection
        elif isinstance(collection, SnapshotCollection):
            reason = _unpicklable_reason((fn,))
            if reason is not None:
                return self._downgrade(
                    collection, fn, indices, mode, stats, method, reason, on_result
                )
            export = shm_transport.export_collection(collection)
            transport, data = "shm", export.handle
        else:
            reason = _unpicklable_reason((fn, collection))
            if reason is not None:
                return self._downgrade(
                    collection, fn, indices, mode, stats, method, reason, on_result
                )
            transport, data = "pickle", collection

        stats.processes = processes
        stats.start_method = method
        stats.transport = transport
        chunk_size = self.config.chunk_size or max(1, -(-n // (processes * 4)))
        chunks = [indices[i : i + chunk_size] for i in range(0, n, chunk_size)]
        payload = (
            fn, mode, self.config.retries, self.config.retry_backoff,
            transport, data,
        )
        results: dict[int, Any] = {}
        failure: tuple[int, str] | None = None
        t0 = time.perf_counter()
        try:
            ctx = mp.get_context(method)
            with ctx.Pool(
                processes=min(processes, len(chunks)),
                initializer=_init_worker,
                initargs=(payload,),
            ) as pool:
                it = pool.imap_unordered(_run_chunk, chunks, chunksize=1)
                for _ in range(len(chunks)):
                    try:
                        if self.config.task_timeout is not None:
                            entries = it.next(self.config.task_timeout)
                        else:
                            entries = it.next()
                    except mp.TimeoutError:
                        pending = sorted(set(indices) - set(results))
                        stats.failures += 1
                        raise TaskError(
                            f"no result within {self.config.task_timeout}s — a worker "
                            f"crashed or a task is stuck; pending snapshot indices "
                            f"{pending[:8]}{'…' if len(pending) > 8 else ''}",
                            index=pending[0] if pending else None,
                            stats=stats,
                        ) from None
                    for index, ok, value, secs, nbytes, used in entries:
                        stats.task_seconds += secs
                        stats.task_wall.append(secs)
                        stats.retries += used
                        if ok:
                            stats.bytes_touched += nbytes
                            results[index] = value
                            if on_result is not None:
                                on_result(index, value)
                        else:
                            stats.failures += 1
                            if failure is None:
                                failure = (index, value)
        finally:
            stats.wall_seconds = time.perf_counter() - t0
            if export is not None:
                export.destroy()
        if failure is not None:
            index, tb_text = failure
            raise TaskError(
                f"snapshot task {index} failed in a worker "
                f"(after {self.config.retries} retries)",
                index=index,
                traceback_text=tb_text,
                stats=stats,
            )
        return [results[i] for i in indices], stats

    def _downgrade(
        self,
        collection: Any,
        fn: Callable[..., Any] | tuple,
        indices: list[int],
        mode: str,
        stats: ExecutionStats,
        method: str,
        reason: str,
        on_result: Callable[[int, Any], None] | None = None,
    ) -> tuple[list[Any], ExecutionStats]:
        """Explicit (warned + recorded) fallback to serial execution."""
        message = (
            f"parallel snapshot map downgraded to serial under {method!r}: {reason}"
        )
        warnings.warn(message, RuntimeWarning, stacklevel=4)
        stats.downgraded = True
        stats.downgrade_reason = reason
        return self._run_serial(collection, fn, indices, mode, stats, on_result)

    def _run_serial(
        self,
        collection: Any,
        fn: Callable[..., Any] | tuple,
        indices: list[int],
        mode: str,
        stats: ExecutionStats,
        on_result: Callable[[int, Any], None] | None = None,
    ) -> tuple[list[Any], ExecutionStats]:
        ctx = _WorkerContext(
            collection=collection,
            fn=fn,
            mode=mode,
            retries=self.config.retries,
            retry_backoff=self.config.retry_backoff,
        )
        results: list[Any] = []
        t0 = time.perf_counter()
        try:
            for index in indices:
                t_task = time.perf_counter()
                used = 0
                while True:
                    try:
                        value, nbytes = _run_task(ctx, index)
                        break
                    except Exception as exc:
                        if used < ctx.retries:
                            used += 1
                            if ctx.retry_backoff > 0:
                                time.sleep(ctx.retry_backoff * (2 ** (used - 1)))
                            continue
                        stats.retries += used
                        stats.failures += 1
                        stats.task_wall.append(time.perf_counter() - t_task)
                        raise TaskError(
                            f"snapshot task {index} failed "
                            f"(after {used} retries): {exc!r}",
                            index=index,
                            traceback_text=traceback.format_exc(),
                            stats=stats,
                        ) from exc
                secs = time.perf_counter() - t_task
                stats.task_seconds += secs
                stats.task_wall.append(secs)
                stats.retries += used
                stats.bytes_touched += nbytes
                results.append(value)
                if on_result is not None:
                    on_result(index, value)
        finally:
            stats.wall_seconds = time.perf_counter() - t0
        return results, stats


def _unpicklable_reason(objs: tuple) -> str | None:
    """None if all objects survive pickling, else a human-readable reason.

    Spawned workers receive their work by pickle (closures and lambdas
    cannot travel); fork inherits everything and skips this check.
    """
    try:
        pickle.dumps(objs)
        return None
    except Exception as exc:
        return f"work is not picklable for spawned workers ({exc})"
