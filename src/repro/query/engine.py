"""Crash-safe parallel execution engine for per-snapshot analyses.

The paper ran its analyses as per-snapshot-partition Spark jobs (§3); this
engine is the local equivalent: it fans a pure function over a snapshot
collection with a process pool and gives the run the properties a scan
subsystem needs in production:

* **start-method portability** — under ``fork`` workers inherit the columns
  copy-on-write; under ``spawn`` (and ``forkserver``) the columns travel
  through a shared-memory segment (:mod:`repro.query.shm`) and only a small
  handle is pickled.  The engine works the same either way.
* **re-entrant scheduling** — tasks are integer indices batched into chunks
  and dispatched through ``imap_unordered``; results are reassembled in
  snapshot order.  All run state lives in an engine-local context, so
  concurrent or nested maps never trample each other (the old module-global
  handoff could).  A map issued *inside* a worker (daemonic processes cannot
  fork) transparently runs serial.
* **fault handling** — a task that raises is retried up to
  ``EngineConfig.retries`` times in the worker; when retries are exhausted a
  structured :class:`TaskError` carrying the snapshot index and the worker
  traceback is raised in the parent — never a hang, never a silent partial
  result.  A worker that dies outright is caught by the optional
  ``task_timeout`` watchdog.  Any *downgrade* to serial execution (no usable
  start method, unpicklable work under spawn) is warned about and recorded
  in the stats, never silent.
* **observability** — every run accumulates per-task wall time, bytes
  touched, retry/failure counts, and pool utilization into an
  :class:`ExecutionStats`, exposed by
  :class:`~repro.query.parallel.SnapshotExecutor` and printed by the bench
  harness.
* **kernel fusion** — :meth:`ExecutionEngine.run_kernels` executes many
  analyses in a *single* pass over the collection.  Each :class:`Kernel`
  contributes a per-snapshot (or per-adjacent-pair) ``map_fn`` whose
  partials are gathered in the worker while the snapshot is resident, plus
  a parent-side ``reduce_fn`` folding the ordered partials into the final
  result.  One fused task per snapshot evaluates every registered kernel
  before the engine moves on, so a disk-backed collection is loaded once
  per snapshot instead of once per analysis; kernels that share a
  ``map_fn`` share one evaluation.  Per-kernel busy time and
  parent-visible snapshot loads land in the run's :class:`ExecutionStats`.

* **run control** — tasks are dispatched in bounded *waves* (one chunk per
  worker in flight) and a :class:`~repro.core.runcontrol.RunController` is
  polled between deliveries: an expired deadline or a received
  SIGINT/SIGTERM stops dispatch, lets in-flight workers drain for a
  bounded grace period (journaling every result that arrives), terminates
  the pool, and raises a typed
  :class:`~repro.core.runcontrol.RunInterrupted` whose message names the
  exact ``--checkpoint`` invocation that resumes byte-identically.  A
  :class:`~repro.core.runcontrol.MemoryBudget` caps the wave size so the
  decoded snapshots resident in workers never exceed the byte ceiling,
  and a per-snapshot **circuit breaker** (``max_task_failures``) can
  quarantine a persistently failing snapshot into the collection's
  :class:`~repro.scan.store.ArchiveHealthReport` instead of sinking the
  whole run.

The chosen start method defaults to ``$REPRO_START_METHOD`` when set
(``fork`` / ``spawn`` / ``forkserver`` / ``serial``), else ``fork`` where
available, else ``spawn``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue
import signal
import time
import traceback
import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.runcontrol import RunController, RunInterrupted
from repro.query import shm as shm_transport
from repro.scan.snapshot import SnapshotCollection

#: Environment variable consulted when ``EngineConfig.start_method`` is None.
START_METHOD_ENV = "REPRO_START_METHOD"

#: Pseudo start method: run everything inline in the calling process.
SERIAL = "serial"

#: Execution modes used by the worker context (internal).
_MODE_MAP = "map"
_MODE_PAIRS = "pairs"
_MODE_FUSED = "fused"


@dataclass(frozen=True)
class Kernel:
    """One analysis expressed as a map/reduce pair over a snapshot series.

    Parameters
    ----------
    name:
        Unique key within one :meth:`ExecutionEngine.run_kernels` call; the
        result dict and the per-kernel stats are keyed by it.
    map_fn:
        ``snapshot -> partial`` (or ``(prev, cur) -> partial`` when
        ``pairwise``).  Runs in the workers, so it must be a module-level
        callable for the spawn transport; kernels passing the *same*
        function object share a single evaluation per snapshot, and the
        shared partial must therefore not be mutated by any reducer.
    reduce_fn:
        ``list[partial] -> result`` over the partials in snapshot order
        (pair kernels receive one partial per adjacent pair).  Runs in the
        parent, so closures — e.g. over an analysis context — are fine.
    pairwise:
        When True, ``map_fn`` sees adjacent ``(prev, cur)`` snapshot pairs
        riding the same sliding two-snapshot window the per-snapshot
        kernels keep resident.
    update_fn / partials_to_state / state_to_result:
        The optional incremental protocol (DESIGN.md §11).  A kernel that
        defines all three can advance a journaled *state* by one
        :class:`~repro.scan.delta.SnapshotDelta` at a time
        (``update_fn(state, delta) -> state``) instead of re-mapping every
        snapshot.  ``partials_to_state`` folds a full pass's ordered
        partials into that state (the bootstrap capture), and
        ``state_to_result`` turns a state into the kernel's final result.
        Equivalence contract: ``reduce_fn(partials)`` must equal
        ``state_to_result(partials_to_state(partials))``, and one
        ``update_fn`` step must equal re-reducing with the new snapshot's
        partial appended — the delta path is byte-identical or it is wrong.
        Kernels without the protocol fall back to a full ``map`` pass,
        warned-not-silent.
    """

    name: str
    map_fn: Callable[..., Any]
    reduce_fn: Callable[[list[Any]], Any]
    pairwise: bool = False
    update_fn: Callable[[Any, Any], Any] | None = None
    partials_to_state: Callable[[list[Any]], Any] | None = None
    state_to_result: Callable[[Any], Any] | None = None

    @property
    def supports_delta(self) -> bool:
        """True when the kernel implements the full incremental protocol."""
        return (
            self.update_fn is not None
            and self.partials_to_state is not None
            and self.state_to_result is not None
        )


@dataclass
class DeltaPlan:
    """Instruction set for delta replay inside :meth:`~ExecutionEngine.run_kernels`.

    ``states`` maps kernel names to journaled states covering the analyzed
    prefix; ``deltas`` is the contiguous
    :class:`~repro.scan.delta.SnapshotDelta` chain from that prefix to the
    collection's end (empty when nothing new was appended).  Kernels with a
    state and the incremental protocol replay deltas; everything else runs
    the normal full pass — and, when ``capture`` is set, protocol-capable
    kernels deposit their freshly reduced state into ``updated_states`` so
    the *next* run can go incremental.  ``replayed`` / ``fallbacks`` record
    which path each kernel took (the equivalence suite asserts on them).
    """

    states: dict[str, Any] = field(default_factory=dict)
    deltas: list[Any] = field(default_factory=list)
    capture: bool = True
    #: outputs — filled in by the engine
    updated_states: dict[str, Any] = field(default_factory=dict)
    replayed: list[str] = field(default_factory=list)
    fallbacks: dict[str, str] = field(default_factory=dict)


class TaskError(RuntimeError):
    """A snapshot task failed (worker exception, crash, or watchdog timeout).

    Attributes
    ----------
    index:
        Snapshot index of the failing task (None if unattributable, e.g. a
        dead worker whose chunk never reported).
    traceback_text:
        The worker-side traceback, verbatim.
    stats:
        The :class:`ExecutionStats` accumulated up to the failure.
    """

    def __init__(
        self,
        message: str,
        index: int | None = None,
        traceback_text: str = "",
        stats: "ExecutionStats | None" = None,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.traceback_text = traceback_text
        self.stats = stats

    def __str__(self) -> str:  # keep the worker traceback visible to callers
        base = super().__str__()
        if self.traceback_text:
            return f"{base}\n--- worker traceback ---\n{self.traceback_text}"
        return base


@dataclass
class ExecutionStats:
    """Accumulated observability for one run (or merged across runs)."""

    runs: int = 0
    n_tasks: int = 0
    processes: int = 1
    start_method: str = SERIAL
    transport: str = "inline"
    wall_seconds: float = 0.0
    task_seconds: float = 0.0
    bytes_touched: int = 0
    retries: int = 0
    failures: int = 0
    #: fused runs: tasks restored from a checkpoint journal instead of run
    restored_tasks: int = 0
    #: tasks never run because the run was interrupted (deadline/signal)
    cancelled_tasks: int = 0
    #: snapshots quarantined by the per-snapshot circuit breaker
    quarantined_snapshots: int = 0
    #: high-water mark of the collection's snapshot cache, in bytes
    #: (parent-visible; 0 for collections without byte accounting)
    peak_cache_bytes: int = 0
    #: seconds left on the controller's deadline when the run ended
    #: (None when the run had no deadline)
    deadline_remaining_s: float | None = None
    downgraded: bool = False
    downgrade_reason: str = ""
    #: kernels whose result came from delta replay (``update``, not ``map``)
    delta_kernels: int = 0
    #: total ``update_fn`` invocations across the delta replay
    delta_updates: int = 0
    #: per-task wall seconds, in completion order
    task_wall: list[float] = field(default_factory=list)
    #: delta replay: per-kernel busy seconds in ``update_fn`` (parent-side)
    kernel_update_seconds: dict[str, float] = field(default_factory=dict)
    #: fused runs: per-kernel busy seconds in the map phase (worker-side)
    kernel_map_seconds: dict[str, float] = field(default_factory=dict)
    #: fused runs: per-kernel reduce seconds (parent-side)
    kernel_reduce_seconds: dict[str, float] = field(default_factory=dict)
    #: snapshot loads observed on the collection's ``loads`` counter in the
    #: parent process during the run (0 for collections without a counter;
    #: worker-side loads under fork/spawn are not visible here)
    snapshot_loads: int = 0
    #: column-block decodes/reuses observed on the collection's block
    #: counters in the parent during the run (lazy disk collections only;
    #: a hit means a kernel reused a block another kernel already decoded)
    block_hits: int = 0
    block_misses: int = 0

    @property
    def utilization(self) -> float:
        """Busy fraction of the pool: Σ task time / (wall × processes)."""
        denom = self.wall_seconds * max(1, self.processes)
        return self.task_seconds / denom if denom > 0 else 0.0

    def merge(self, other: "ExecutionStats") -> None:
        """Fold another run into this aggregate (lifetime executor stats)."""
        self.runs += other.runs
        self.n_tasks += other.n_tasks
        self.processes = max(self.processes, other.processes)
        self.start_method = other.start_method
        self.transport = other.transport
        self.wall_seconds += other.wall_seconds
        self.task_seconds += other.task_seconds
        self.bytes_touched += other.bytes_touched
        self.retries += other.retries
        self.failures += other.failures
        self.restored_tasks += other.restored_tasks
        self.cancelled_tasks += other.cancelled_tasks
        self.quarantined_snapshots += other.quarantined_snapshots
        self.peak_cache_bytes = max(self.peak_cache_bytes, other.peak_cache_bytes)
        if other.deadline_remaining_s is not None:
            self.deadline_remaining_s = (
                other.deadline_remaining_s
                if self.deadline_remaining_s is None
                else min(self.deadline_remaining_s, other.deadline_remaining_s)
            )
        self.downgraded = self.downgraded or other.downgraded
        if other.downgrade_reason:
            self.downgrade_reason = other.downgrade_reason
        self.delta_kernels += other.delta_kernels
        self.delta_updates += other.delta_updates
        for name, secs in other.kernel_update_seconds.items():
            self.kernel_update_seconds[name] = (
                self.kernel_update_seconds.get(name, 0.0) + secs
            )
        self.task_wall.extend(other.task_wall)
        for name, secs in other.kernel_map_seconds.items():
            self.kernel_map_seconds[name] = (
                self.kernel_map_seconds.get(name, 0.0) + secs
            )
        for name, secs in other.kernel_reduce_seconds.items():
            self.kernel_reduce_seconds[name] = (
                self.kernel_reduce_seconds.get(name, 0.0) + secs
            )
        self.snapshot_loads += other.snapshot_loads
        self.block_hits += other.block_hits
        self.block_misses += other.block_misses

    def kernel_totals(self) -> dict[str, float]:
        """Per-kernel busy seconds, map + reduce combined."""
        totals = dict(self.kernel_map_seconds)
        for name, secs in self.kernel_reduce_seconds.items():
            totals[name] = totals.get(name, 0.0) + secs
        return totals

    def summary(self) -> str:
        """One-paragraph human-readable digest (bench harness output)."""
        mean_task = self.task_seconds / self.n_tasks if self.n_tasks else 0.0
        max_task = max(self.task_wall) if self.task_wall else 0.0
        lines = [
            f"{self.n_tasks} tasks / {self.runs} runs | "
            f"{self.processes} proc via {self.start_method} ({self.transport})",
            f"wall {self.wall_seconds:.3f}s  busy {self.task_seconds:.3f}s  "
            f"utilization {self.utilization:.0%}",
            f"per-task mean {mean_task * 1e3:.1f}ms  max {max_task * 1e3:.1f}ms  "
            f"bytes touched {self.bytes_touched / 1e6:.1f}MB",
            f"retries {self.retries}  failures {self.failures}",
        ]
        if self.restored_tasks:
            lines.append(
                f"restored from checkpoint: {self.restored_tasks} tasks"
            )
        if self.cancelled_tasks:
            lines.append(
                f"cancelled (graceful stop): {self.cancelled_tasks} tasks not run"
            )
        if self.quarantined_snapshots:
            lines.append(
                f"quarantined snapshots: {self.quarantined_snapshots} "
                "(circuit breaker)"
            )
        if self.peak_cache_bytes:
            lines.append(
                f"peak snapshot cache {self.peak_cache_bytes / 1e6:.1f}MB"
            )
        if self.deadline_remaining_s is not None:
            lines.append(
                f"deadline remaining {self.deadline_remaining_s:.1f}s at finish"
            )
        if self.snapshot_loads:
            lines.append(f"snapshot loads (parent-visible): {self.snapshot_loads}")
        if self.block_hits or self.block_misses:
            lines.append(
                f"column blocks: {self.block_misses} decoded, "
                f"{self.block_hits} reused resident"
            )
        if self.delta_kernels:
            lines.append(
                f"delta replay: {self.delta_kernels} kernels advanced via "
                f"update ({self.delta_updates} update calls)"
            )
        if self.kernel_map_seconds or self.kernel_reduce_seconds:
            totals = self.kernel_totals()
            cells = []
            for name in sorted(totals, key=totals.get, reverse=True):
                m = self.kernel_map_seconds.get(name, 0.0)
                r = self.kernel_reduce_seconds.get(name, 0.0)
                cells.append(f"{name} {m * 1e3:.1f}+{r * 1e3:.1f}ms")
            lines.append("per-kernel map+reduce: " + "  ".join(cells))
        if self.downgraded:
            lines.append(f"DOWNGRADED to serial: {self.downgrade_reason}")
        return "\n".join(lines)


@dataclass(frozen=True)
class EngineConfig:
    """Execution policy for :class:`ExecutionEngine`.

    Parameters
    ----------
    processes:
        Worker count; None picks half the cores (capped at the task count),
        1 forces serial.
    start_method:
        ``fork`` / ``spawn`` / ``forkserver`` / ``serial``; None defers to
        ``$REPRO_START_METHOD``, then the platform default (fork where
        available).
    chunk_size:
        Tasks per scheduling unit; None targets ~4 chunks per worker.
    retries:
        Per-task in-worker retry count for raising tasks.
    retry_backoff:
        Base seconds for exponential backoff between in-worker retries
        (sleep ``retry_backoff * 2**attempt``); 0 retries immediately.
        Transient-I/O failures (EIO under load) are the target: an
        immediate retry usually hits the same condition, a backed-off one
        usually clears it.
    task_timeout:
        Watchdog seconds to wait for the *next* chunk result before
        declaring the pool dead (catches hard-crashed workers, which a
        plain ``Pool`` would otherwise wait on forever while respawning
        replacements); None disables the watchdog.  The default is generous
        — per-task analysis work here is sub-second to seconds — so a
        legitimate run never trips it.
    """

    processes: int | None = None
    start_method: str | None = None
    chunk_size: int | None = None
    retries: int = 0
    retry_backoff: float = 0.0
    task_timeout: float | None = 300.0


class QuarantinedRow:
    """Placeholder row for a snapshot the circuit breaker quarantined.

    Lives at module level (and pickles cleanly) so quarantine decisions
    journal and restore like any other row — a resumed run skips the bad
    snapshot instead of tripping over it again.  Kernel reduces never see
    one: :meth:`ExecutionEngine.run_kernels` filters quarantined indices
    out of every kernel's partials, exactly like a snapshot the
    degradation policy dropped at construction.
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason

    def __getstate__(self) -> str:
        return self.reason

    def __setstate__(self, state: str) -> None:
        self.reason = state


# -- worker side -----------------------------------------------------------
#
# Each worker process gets its context exactly once, via the pool
# initializer.  This is per-*worker* state, not parent-side handoff: the
# parent never mutates it, so engine runs are re-entrant and thread-safe.


@dataclass
class _WorkerContext:
    collection: Any
    fn: Callable[..., Any]
    mode: str
    retries: int
    retry_backoff: float = 0.0
    segment: Any = None  # keeps the shm mapping alive for the views


_WORKER: _WorkerContext | None = None


def _init_worker(payload: tuple) -> None:
    global _WORKER
    # Ctrl-C is the *parent's* stop signal: the parent converts it into a
    # graceful drain (journal flushed, bounded grace, pool terminated).  A
    # terminal delivers SIGINT to the whole process group, so workers must
    # ignore it or they die mid-task and the drain collects nothing.
    # SIGTERM stays at its default — ``Pool.terminate()`` relies on it.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    fn, mode, retries, retry_backoff, transport, data = payload
    segment = None
    if transport == "shm":
        collection, segment = shm_transport.attach_collection(data)
    else:
        collection = data
    _WORKER = _WorkerContext(
        collection=collection,
        fn=fn,
        mode=mode,
        retries=retries,
        retry_backoff=retry_backoff,
        segment=segment,
    )


def _nbytes_of(snapshot: Any) -> int:
    sizer = getattr(snapshot, "column_nbytes", None)
    return int(sizer()) if callable(sizer) else 0


def _run_fused_task(ctx: _WorkerContext, index: int) -> tuple[Any, int]:
    """All kernels' map phases against one resident snapshot (+ its
    predecessor for pair kernels).

    ``ctx.fn`` holds the shipped ``(name, map_fn, pairwise)`` triples.  The
    previous snapshot is fetched *before* the current one so an LRU-cached
    disk collection with a two-snapshot window serves the predecessor from
    cache and loads each snapshot exactly once across the pass.  Kernels
    sharing a map function share one evaluation; its cost is split evenly
    among them so per-kernel times still sum to the pass's busy time.
    """
    prev = ctx.collection[index - 1] if index > 0 else None
    cur = ctx.collection[index]
    groups: dict[tuple[Callable[..., Any], bool], list[str]] = {}
    for name, map_fn, pairwise in ctx.fn:
        groups.setdefault((map_fn, pairwise), []).append(name)
    partials: dict[str, Any] = {}
    times: dict[str, float] = {}
    nbytes = _nbytes_of(cur)
    counted_prev = False
    for (map_fn, pairwise), names in groups.items():
        if pairwise:
            if prev is None:
                continue
            if not counted_prev:
                nbytes += _nbytes_of(prev)
                counted_prev = True
            t0 = time.perf_counter()
            value = map_fn(prev, cur)
        else:
            t0 = time.perf_counter()
            value = map_fn(cur)
        share = (time.perf_counter() - t0) / len(names)
        for name in names:
            partials[name] = value
            times[name] = share
    return (partials, times), nbytes


def _run_task(ctx: _WorkerContext, index: int) -> tuple[Any, int]:
    if ctx.mode == _MODE_FUSED:
        return _run_fused_task(ctx, index)
    if ctx.mode == _MODE_PAIRS:
        prev, cur = ctx.collection[index - 1], ctx.collection[index]
        return ctx.fn(prev, cur), _nbytes_of(prev) + _nbytes_of(cur)
    snap = ctx.collection[index]
    return ctx.fn(snap), _nbytes_of(snap)


def _run_chunk(indices: Sequence[int]) -> list[tuple]:
    """Execute one chunk; every task reports (index, ok, value, secs, nbytes, retries)."""
    ctx = _WORKER
    assert ctx is not None, "worker context not initialized"
    out: list[tuple] = []
    for index in indices:
        t0 = time.perf_counter()
        used = 0
        while True:
            try:
                value, nbytes = _run_task(ctx, index)
            except Exception:
                if used < ctx.retries:
                    used += 1
                    if ctx.retry_backoff > 0:
                        time.sleep(ctx.retry_backoff * (2 ** (used - 1)))
                    continue
                out.append(
                    (index, False, traceback.format_exc(), time.perf_counter() - t0, 0, used)
                )
                break
            out.append((index, True, value, time.perf_counter() - t0, nbytes, used))
            break
    return out


# -- parent side -----------------------------------------------------------


def _available_methods() -> list[str]:
    return mp.get_all_start_methods()


class ExecutionEngine:
    """Runs per-snapshot (or per-pair) functions under one explicit policy."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig()

    # -- public API --------------------------------------------------------

    def map(
        self, collection: Any, fn: Callable[[Any], Any]
    ) -> tuple[list[Any], ExecutionStats]:
        """``[fn(s) for s in collection]`` with the configured policy + stats."""
        return self._run(collection, fn, list(range(len(collection))), _MODE_MAP)

    def map_pairs(
        self, collection: Any, fn: Callable[[Any, Any], Any]
    ) -> tuple[list[Any], ExecutionStats]:
        """``fn`` over adjacent snapshot pairs (weekly diffs), ordered."""
        return self._run(collection, fn, list(range(1, len(collection))), _MODE_PAIRS)

    def run_kernels(
        self,
        collection: Any,
        kernels: Sequence[Kernel],
        journal: Any = None,
        controller: RunController | None = None,
        max_task_failures: int | None = None,
        delta_plan: DeltaPlan | None = None,
    ) -> tuple[dict[str, Any], ExecutionStats]:
        """Run every kernel in a single fused pass over the collection.

        Each snapshot is made resident once (loaded from disk once, exported
        to shared memory once) and every kernel's map phase runs against it
        before the pass moves on; pair kernels see the sliding
        ``(prev, cur)`` window.  Returns ``{kernel.name: reduced result}``
        plus the pass's :class:`ExecutionStats`, including per-kernel
        map/reduce seconds and the parent-visible snapshot-load count.

        ``journal`` (a :class:`~repro.query.journal.KernelJournal`) makes
        the pass resumable: completed snapshot rows are appended durably as
        they arrive, and a rerun restores them instead of re-executing —
        only the first unprocessed snapshot onward runs.  Before restored
        rows are trusted, the collection's path interning is replayed in
        index order (``warm_paths``) so path ids inside restored partials
        stay consistent with live loads.

        ``controller`` (a :class:`~repro.core.runcontrol.RunController`) is
        polled between dispatch waves; on an expired deadline or a
        cancelled token the pass stops gracefully — checkpoint flushed,
        in-flight workers drained within the grace period, pool terminated
        — and raises :class:`~repro.core.runcontrol.RunInterrupted` with
        the resume invocation in its message.  ``max_task_failures``
        enables the per-snapshot circuit breaker: a snapshot whose task
        fails that many times across retries is quarantined via the
        collection's ``quarantine_task_failure`` hook (recorded in its
        :class:`~repro.scan.store.ArchiveHealthReport` under the existing
        ``on_error`` policy) and excluded from every kernel's reduce, like
        a corrupt file dropped at construction.  The breaker requires a
        non-``raise`` policy on the collection; otherwise failures raise a
        :class:`TaskError` exactly as before.

        ``delta_plan`` (a :class:`DeltaPlan`) switches kernels carrying the
        incremental protocol *and* a journaled state onto delta replay:
        their results come from folding ``update_fn`` over the plan's delta
        chain — no snapshot is loaded for them.  Every other kernel runs
        the full fused pass exactly as before (warned, never silent, when
        an incremental attempt degrades), and — when ``plan.capture`` —
        protocol-capable kernels deposit their freshly reduced state into
        ``plan.updated_states`` for the next run.
        """
        kernels = list(kernels)
        names = [k.name for k in kernels]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate kernel names: {sorted(duplicates)}")
        n = len(collection)
        if n == 0 or not kernels:
            stats = ExecutionStats(runs=1)
            _note_deadline(stats, controller)
            return {k.name: k.reduce_fn([]) for k in kernels}, stats
        replay: list[Kernel] = []
        if delta_plan is not None:
            replay, kernels = self._split_delta_plan(kernels, delta_plan)
        replay_results: dict[str, Any] = {}
        replay_stats = ExecutionStats()
        if replay:
            # replay precedes the fused pass: added-path interning must
            # follow snapshot order, and when every kernel replays the pass
            # is skipped entirely — the O(delta) fast path
            replay_results = self._replay_deltas(
                replay, delta_plan, controller, replay_stats
            )
        if not kernels:
            if journal is not None:
                journal.close()
            replay_stats.runs = 1
            _note_deadline(replay_stats, controller)
            return replay_results, replay_stats
        specs = tuple((k.name, k.map_fn, k.pairwise) for k in kernels)
        restored: dict[int, Any] = {}
        if journal is not None:
            restored = journal.load()
            warm = getattr(collection, "warm_paths", None)
            if restored and callable(warm):
                for index in sorted(restored):
                    warm(index)
        remaining = [i for i in range(n) if i not in restored]
        on_result = journal.append if journal is not None else None
        quarantine = self._resolve_quarantine(collection, max_task_failures)
        try:
            fresh, stats = self._run(
                collection,
                specs,
                remaining,
                _MODE_FUSED,
                on_result=on_result,
                controller=controller,
                quarantine=quarantine,
                max_task_failures=max_task_failures,
            )
        except RunInterrupted as err:
            # merge journal-restored rows into the interrupt's partial so a
            # degraded consumer (the serving layer's deadline path) sees the
            # full completed prefix, not just what this invocation ran
            merged: dict[int, Any] = dict(restored)
            if isinstance(err.partial, dict):
                merged.update(err.partial)
            err.partial = merged
            if err.resume_hint is None:
                if journal is not None:
                    err.resume_hint = (
                        "re-run the same command with --checkpoint "
                        f"{journal.path} — completed snapshots are journaled "
                        "and the resumed report is byte-identical"
                    )
                else:
                    err.resume_hint = (
                        "no checkpoint journal was configured; pass "
                        "--checkpoint PATH to make runs resumable"
                    )
            if err.stats is not None:
                err.stats.restored_tasks = len(restored)
            raise
        finally:
            # flush the checkpoint: every journaled row is already fsynced,
            # this releases the file handle even on an interrupt/failure
            if journal is not None:
                journal.close()
        rows: dict[int, Any] = dict(restored)
        rows.update(zip(remaining, fresh))
        stats.restored_tasks = len(restored)
        quarantined_idx = {
            i for i, row in rows.items() if isinstance(row, QuarantinedRow)
        }
        stats.quarantined_snapshots = len(quarantined_idx)
        for i in remaining:
            if i in quarantined_idx:
                continue
            _, times = rows[i]
            for name, secs in times.items():
                stats.kernel_map_seconds[name] = (
                    stats.kernel_map_seconds.get(name, 0.0) + secs
                )
        results: dict[str, Any] = {}
        for kernel in kernels:
            start = 1 if kernel.pairwise else 0
            partials = [
                rows[i][0][kernel.name]
                for i in range(start, n)
                if i not in quarantined_idx
            ]
            t0 = time.perf_counter()
            if (
                delta_plan is not None
                and delta_plan.capture
                and kernel.supports_delta
            ):
                # bootstrap capture: same result as reduce_fn, but the
                # intermediate state is kept so the next run can replay
                # deltas instead of re-mapping every snapshot
                state = kernel.partials_to_state(partials)
                delta_plan.updated_states[kernel.name] = state
                results[kernel.name] = kernel.state_to_result(state)
            else:
                results[kernel.name] = kernel.reduce_fn(partials)
            stats.kernel_reduce_seconds[kernel.name] = time.perf_counter() - t0
        results.update(replay_results)
        stats.delta_kernels = replay_stats.delta_kernels
        stats.delta_updates = replay_stats.delta_updates
        stats.kernel_update_seconds = replay_stats.kernel_update_seconds
        stats.wall_seconds += replay_stats.wall_seconds
        return results, stats

    @staticmethod
    def _resolve_quarantine(
        collection: Any, max_task_failures: int | None
    ) -> Callable[[int, str], str] | None:
        """The circuit breaker's quarantine hook, when armed.

        Requires an explicit ``max_task_failures`` *and* a collection that
        both exposes ``quarantine_task_failure`` and carries a non-raise
        ``on_error`` policy — quarantining a snapshot behind the back of an
        ``on_error="raise"`` caller would be a silent partial result.
        """
        if max_task_failures is None:
            return None
        if max_task_failures < 1:
            raise ValueError("max_task_failures must be >= 1")
        hook = getattr(collection, "quarantine_task_failure", None)
        if not callable(hook):
            return None
        if getattr(collection, "on_error", "raise") == "raise":
            return None
        return hook

    @staticmethod
    def _split_delta_plan(
        kernels: list[Kernel], plan: DeltaPlan
    ) -> tuple[list[Kernel], list[Kernel]]:
        """Partition into (replayable, full-pass) under the plan.

        A kernel replays only when it implements the incremental protocol
        *and* the plan carries its journaled state.  Degrading from a real
        incremental attempt (the plan had states) is warned, mirroring the
        serial-downgrade convention — never a silent full re-scan.
        """
        replay: list[Kernel] = []
        fused: list[Kernel] = []
        for kernel in kernels:
            if not kernel.supports_delta:
                plan.fallbacks[kernel.name] = (
                    "kernel does not implement the incremental protocol"
                )
                fused.append(kernel)
            elif kernel.name not in plan.states:
                plan.fallbacks[kernel.name] = "no journaled state"
                fused.append(kernel)
            else:
                replay.append(kernel)
        if plan.states and fused:
            detail = "; ".join(
                f"{name}: {reason}" for name, reason in sorted(plan.fallbacks.items())
            )
            warnings.warn(
                f"incremental analysis: {len(fused)} kernel(s) fell back to "
                f"a full map pass ({detail})",
                RuntimeWarning,
                stacklevel=3,
            )
        return replay, fused

    @staticmethod
    def _replay_deltas(
        kernels: list[Kernel],
        plan: DeltaPlan,
        controller: RunController | None,
        stats: ExecutionStats,
    ) -> dict[str, Any]:
        """Fold each kernel's ``update_fn`` over the plan's delta chain.

        Runs in the parent (deltas are small); the controller is polled
        between updates so deadlines/signals still interrupt gracefully.
        States land in ``plan.updated_states`` only after a kernel's full
        chain — an interrupt mid-chain persists nothing, so a rerun replays
        from the journaled prefix instead of trusting a half-advanced state.
        """
        results: dict[str, Any] = {}
        t0 = time.perf_counter()
        try:
            for kernel in kernels:
                state = plan.states[kernel.name]
                t_kernel = time.perf_counter()
                for delta in plan.deltas:
                    if controller is not None:
                        reason = controller.should_stop()
                        if reason is not None:
                            raise RunInterrupted(
                                f"run interrupted ({reason}) during delta "
                                "replay; journaled kernel state is untouched",
                                reason=reason,
                                stats=stats,
                            )
                    state = kernel.update_fn(state, delta)
                    stats.delta_updates += 1
                plan.updated_states[kernel.name] = state
                results[kernel.name] = kernel.state_to_result(state)
                plan.replayed.append(kernel.name)
                stats.kernel_update_seconds[kernel.name] = (
                    time.perf_counter() - t_kernel
                )
        finally:
            stats.wall_seconds += time.perf_counter() - t0
            stats.delta_kernels = len(plan.replayed)
        return results

    # -- policy resolution -------------------------------------------------

    def _resolve_start_method(self) -> str:
        method = self.config.start_method or os.environ.get(START_METHOD_ENV) or ""
        method = method.strip().lower()
        available = _available_methods()
        if method:
            if method == SERIAL:
                return SERIAL
            if method in available:
                return method
            raise ValueError(
                f"start method {method!r} not available here (have {available})"
            )
        if "fork" in available:
            return "fork"
        if "spawn" in available:  # pragma: no cover - non-fork platforms
            return "spawn"
        return SERIAL  # pragma: no cover - no multiprocessing at all

    def _resolve_processes(self, n_tasks: int) -> int:
        if self.config.processes is not None:
            return max(1, int(self.config.processes))
        return max(1, min(n_tasks, (os.cpu_count() or 2) // 2))

    # -- execution ---------------------------------------------------------

    def _run(
        self,
        collection: Any,
        fn: Callable[..., Any] | tuple,
        indices: list[int],
        mode: str,
        on_result: Callable[[int, Any], None] | None = None,
        controller: RunController | None = None,
        quarantine: Callable[[int, str], str] | None = None,
        max_task_failures: int | None = None,
    ) -> tuple[list[Any], ExecutionStats]:
        """Dispatch with parent-visible snapshot-load accounting.

        ``on_result(index, value)`` fires in the *parent* as each task's
        result arrives (completion order) — the checkpoint journal's hook.
        """
        loads_before = getattr(collection, "loads", None)
        block_hits_before = getattr(collection, "block_hits", None)
        block_misses_before = getattr(collection, "block_misses", None)

        def finish(stats: ExecutionStats) -> None:
            if loads_before is not None:
                stats.snapshot_loads += int(collection.loads) - loads_before
            if block_hits_before is not None:
                stats.block_hits += int(collection.block_hits) - block_hits_before
            if block_misses_before is not None:
                stats.block_misses += (
                    int(collection.block_misses) - block_misses_before
                )
            peak = getattr(collection, "peak_cache_bytes", 0)
            if peak:
                stats.peak_cache_bytes = max(stats.peak_cache_bytes, int(peak))
            _note_deadline(stats, controller)

        try:
            results, stats = self._dispatch(
                collection,
                fn,
                indices,
                mode,
                on_result,
                controller=controller,
                quarantine=quarantine,
                max_task_failures=max_task_failures,
            )
        except (TaskError, RunInterrupted) as err:
            if err.stats is not None:
                finish(err.stats)
            raise
        finish(stats)
        if stats.transport in ("inherit", "pickle"):
            # pooled workers loaded — and path-interned — on their own
            # copies of the collection, leaving the parent's PathTable
            # empty; replay the interning parent-side in index order so
            # snapshot path ids resolve against it (the depth/extension
            # gathers and the kernel-state journal both depend on that).
            # shm transport needs no replay: the parent interned everything
            # while exporting the segment.
            warm = getattr(collection, "warm_paths", None)
            if callable(warm):
                for index in sorted(indices):
                    warm(index)
        return results, stats

    def _dispatch(
        self,
        collection: Any,
        fn: Callable[..., Any] | tuple,
        indices: list[int],
        mode: str,
        on_result: Callable[[int, Any], None] | None = None,
        controller: RunController | None = None,
        quarantine: Callable[[int, str], str] | None = None,
        max_task_failures: int | None = None,
    ) -> tuple[list[Any], ExecutionStats]:
        stats = ExecutionStats(runs=1)
        n = len(indices)
        if n == 0:
            return [], stats
        stats.n_tasks = n
        processes = self._resolve_processes(n)
        budget = controller.memory_budget if controller is not None else None
        if budget is not None:
            # memory pressure: shrink the dispatch wave so the decoded
            # snapshots resident in workers fit the budget's wave share —
            # degrade throughput, never OOM.  cap == 1 falls back to serial.
            per_task = _estimate_task_nbytes(collection)
            if per_task > 0:
                cap = max(1, budget.wave_bytes // per_task)
                processes = min(processes, int(cap))
        serial_kwargs = dict(
            on_result=on_result,
            controller=controller,
            quarantine=quarantine,
            max_task_failures=max_task_failures,
        )
        if processes <= 1:
            return self._run_serial(
                collection, fn, indices, mode, stats, **serial_kwargs
            )
        method = self._resolve_start_method()
        if method == SERIAL:
            # explicit policy choice (config or $REPRO_START_METHOD=serial)
            return self._run_serial(
                collection, fn, indices, mode, stats, **serial_kwargs
            )
        if mp.current_process().daemon:
            # nested map inside a pool worker: daemonic processes cannot
            # have children, run inline (recorded, not a parent-side warning)
            stats.downgraded = True
            stats.downgrade_reason = "nested map inside a daemonic worker"
            return self._run_serial(
                collection, fn, indices, mode, stats, **serial_kwargs
            )

        export: shm_transport.CollectionExport | None = None
        if method == "fork":
            transport, data = "inherit", collection
        elif isinstance(collection, SnapshotCollection) or _shm_affordable(
            collection, budget
        ):
            # in-memory collections always ride shared memory under spawn;
            # lazy disk collections do too when their full decoded size fits
            # the budget's wave share — every block is decoded exactly once
            # in the parent and reused by every kernel of every wave.  Too
            # big for the budget → fall through to pickling the (small)
            # collection object and let each worker decode lazily under its
            # own bounded cache.
            reason = _unpicklable_reason((fn,))
            if reason is not None:
                return self._downgrade(
                    collection, fn, indices, mode, stats, method, reason,
                    **serial_kwargs,
                )
            export = shm_transport.export_collection(collection)
            transport, data = "shm", export.handle
        else:
            reason = _unpicklable_reason((fn, collection))
            if reason is not None:
                return self._downgrade(
                    collection, fn, indices, mode, stats, method, reason,
                    **serial_kwargs,
                )
            transport, data = "pickle", collection

        stats.processes = processes
        stats.start_method = method
        stats.transport = transport
        retries = self._effective_retries(quarantine, max_task_failures)
        chunk_size = self.config.chunk_size or max(1, -(-n // (processes * 4)))
        chunks = [indices[i : i + chunk_size] for i in range(0, n, chunk_size)]
        payload = (
            fn, mode, retries, self.config.retry_backoff,
            transport, data,
        )
        # Dispatch in bounded waves — at most ``wave`` chunks in flight,
        # the next submitted only as one completes.  Waves are what make
        # run control enforceable: a stop request halts *submission*
        # immediately (only in-flight chunks drain during the grace
        # period), and under a memory budget in-flight decoded snapshots
        # never exceed wave × window bytes.  Without a budget each worker
        # keeps one chunk queued behind the one it is executing.
        wave = min(len(chunks), processes if budget is not None else processes * 2)
        poll = 0.2  # controller polling cadence while waiting for results
        results: dict[int, Any] = {}
        failure: tuple[int | None, str] | None = None
        cancel_reason: str | None = None
        t0 = time.perf_counter()
        try:
            ctx = mp.get_context(method)
            with ctx.Pool(
                processes=min(processes, len(chunks)),
                initializer=_init_worker,
                initargs=(payload,),
            ) as pool:
                inbox: queue.SimpleQueue = queue.SimpleQueue()

                def submit(chunk: Sequence[int]) -> None:
                    pool.apply_async(
                        _run_chunk,
                        (chunk,),
                        callback=lambda entries: inbox.put(("ok", entries)),
                        error_callback=lambda exc: inbox.put(("err", exc)),
                    )

                next_chunk = 0
                while next_chunk < wave:
                    submit(chunks[next_chunk])
                    next_chunk += 1
                inflight = next_chunk
                waited = 0.0
                drain_deadline: float | None = None
                while inflight:
                    if controller is not None and cancel_reason is None:
                        cancel_reason = controller.should_stop()
                        if cancel_reason is not None:
                            drain_deadline = (
                                time.monotonic() + controller.grace_seconds
                            )
                    if (
                        drain_deadline is not None
                        and time.monotonic() >= drain_deadline
                    ):
                        break  # grace expired: abandon in-flight chunks
                    timeout = self.config.task_timeout
                    if controller is not None:
                        timeout = poll if timeout is None else min(poll, timeout)
                    try:
                        if timeout is None:
                            kind, item = inbox.get()
                        else:
                            kind, item = inbox.get(timeout=timeout)
                    except queue.Empty:
                        waited += timeout
                        if (
                            self.config.task_timeout is not None
                            and waited >= self.config.task_timeout
                        ):
                            pending = sorted(set(indices) - set(results))
                            stats.failures += 1
                            raise TaskError(
                                f"no result within {self.config.task_timeout}s — a worker "
                                f"crashed or a task is stuck; pending snapshot indices "
                                f"{pending[:8]}{'…' if len(pending) > 8 else ''}",
                                index=pending[0] if pending else None,
                                stats=stats,
                            ) from None
                        continue
                    waited = 0.0
                    inflight -= 1
                    if kind == "err":
                        stats.failures += 1
                        raise TaskError(
                            f"chunk execution failed in the pool: {item!r}",
                            stats=stats,
                        ) from item
                    for index, ok, value, secs, nbytes, used in item:
                        stats.task_seconds += secs
                        stats.task_wall.append(secs)
                        stats.retries += used
                        if ok:
                            stats.bytes_touched += nbytes
                            results[index] = value
                            if on_result is not None:
                                on_result(index, value)
                        elif quarantine is not None:
                            # circuit breaker: the task burned through its
                            # allowed attempts — quarantine the snapshot
                            # instead of sinking the run
                            stats.failures += 1
                            row = QuarantinedRow(_failure_digest(value))
                            quarantine(index, row.reason)
                            results[index] = row
                            if on_result is not None:
                                on_result(index, row)
                        else:
                            stats.failures += 1
                            if failure is None:
                                failure = (index, value)
                    if cancel_reason is None and next_chunk < len(chunks):
                        submit(chunks[next_chunk])
                        next_chunk += 1
                        inflight += 1
        finally:
            stats.wall_seconds = time.perf_counter() - t0
            if export is not None:
                export.destroy()
        if cancel_reason is not None:
            stats.cancelled_tasks = sum(1 for i in indices if i not in results)
            done = n - stats.cancelled_tasks
            raise RunInterrupted(
                f"run interrupted ({cancel_reason}) after {done}/{n} tasks; "
                "in-flight workers drained, pool terminated",
                reason=cancel_reason,
                partial=dict(results),
                stats=stats,
            )
        if failure is not None:
            index, tb_text = failure
            raise TaskError(
                f"snapshot task {index} failed in a worker "
                f"(after {retries} retries)",
                index=index,
                traceback_text=tb_text,
                stats=stats,
            )
        return [results[i] for i in indices], stats

    def _effective_retries(
        self,
        quarantine: Callable[[int, str], str] | None,
        max_task_failures: int | None,
    ) -> int:
        """In-worker retry count; the circuit breaker caps total attempts."""
        if quarantine is not None and max_task_failures is not None:
            return min(self.config.retries, max_task_failures - 1)
        return self.config.retries

    def _downgrade(
        self,
        collection: Any,
        fn: Callable[..., Any] | tuple,
        indices: list[int],
        mode: str,
        stats: ExecutionStats,
        method: str,
        reason: str,
        **serial_kwargs: Any,
    ) -> tuple[list[Any], ExecutionStats]:
        """Explicit (warned + recorded) fallback to serial execution."""
        message = (
            f"parallel snapshot map downgraded to serial under {method!r}: {reason}"
        )
        warnings.warn(message, RuntimeWarning, stacklevel=4)
        stats.downgraded = True
        stats.downgrade_reason = reason
        return self._run_serial(collection, fn, indices, mode, stats, **serial_kwargs)

    def _run_serial(
        self,
        collection: Any,
        fn: Callable[..., Any] | tuple,
        indices: list[int],
        mode: str,
        stats: ExecutionStats,
        on_result: Callable[[int, Any], None] | None = None,
        controller: RunController | None = None,
        quarantine: Callable[[int, str], str] | None = None,
        max_task_failures: int | None = None,
    ) -> tuple[list[Any], ExecutionStats]:
        ctx = _WorkerContext(
            collection=collection,
            fn=fn,
            mode=mode,
            retries=self._effective_retries(quarantine, max_task_failures),
            retry_backoff=self.config.retry_backoff,
        )
        results: list[Any] = []
        t0 = time.perf_counter()
        try:
            for pos, index in enumerate(indices):
                if controller is not None:
                    reason = controller.should_stop()
                    if reason is not None:
                        stats.cancelled_tasks = len(indices) - pos
                        raise RunInterrupted(
                            f"run interrupted ({reason}) after {pos}/"
                            f"{len(indices)} tasks; completed work journaled",
                            reason=reason,
                            partial=dict(zip(indices[:pos], results)),
                            stats=stats,
                        )
                t_task = time.perf_counter()
                used = 0
                while True:
                    try:
                        value, nbytes = _run_task(ctx, index)
                        break
                    except Exception as exc:
                        if used < ctx.retries:
                            used += 1
                            if ctx.retry_backoff > 0:
                                time.sleep(ctx.retry_backoff * (2 ** (used - 1)))
                            continue
                        stats.retries += used
                        stats.failures += 1
                        stats.task_wall.append(time.perf_counter() - t_task)
                        if quarantine is not None:
                            # circuit breaker (see the parallel path)
                            value = QuarantinedRow(_failure_digest(repr(exc)))
                            quarantine(index, value.reason)
                            nbytes = 0
                            break
                        raise TaskError(
                            f"snapshot task {index} failed "
                            f"(after {used} retries): {exc!r}",
                            index=index,
                            traceback_text=traceback.format_exc(),
                            stats=stats,
                        ) from exc
                if not isinstance(value, QuarantinedRow):
                    secs = time.perf_counter() - t_task
                    stats.task_seconds += secs
                    stats.task_wall.append(secs)
                    stats.retries += used
                    stats.bytes_touched += nbytes
                results.append(value)
                if on_result is not None:
                    on_result(index, value)
        finally:
            stats.wall_seconds = time.perf_counter() - t0
        return results, stats


def _note_deadline(
    stats: ExecutionStats, controller: RunController | None
) -> None:
    """Record the deadline remaining on ``stats``, uniformly.

    Every ``run_kernels`` exit path — the normal fused pass, the zero-task
    early return, and the replay-only delta fast path — reports
    ``deadline_remaining_s`` the same way: a float whenever the controller
    carries a deadline (even if no task ever consulted it), ``None`` when
    there is no deadline.  The serving layer logs this as one uniform
    field per request.
    """
    if controller is not None and controller.deadline is not None:
        stats.deadline_remaining_s = float(controller.remaining())


def _failure_digest(tb_text: str) -> str:
    """One-line reason for a quarantine record (last traceback line)."""
    lines = [ln.strip() for ln in str(tb_text).strip().splitlines() if ln.strip()]
    return lines[-1] if lines else "task failed"


def _estimate_task_nbytes(collection: Any) -> int:
    """Decoded bytes one in-flight task keeps resident (2-snapshot window).

    Collections expose ``max_snapshot_nbytes()`` when they can estimate a
    snapshot's decoded size without loading it (the disk store derives it
    from headers).  Returns 0 — "no adjustment" — when no estimate exists:
    an in-memory collection is already resident, so capping waves cannot
    reduce its footprint.
    """
    sizer = getattr(collection, "max_snapshot_nbytes", None)
    if not callable(sizer):
        return 0
    try:
        per_snap = int(sizer())
    except Exception:  # pragma: no cover - estimation must never sink a run
        return 0
    return 2 * max(0, per_snap)


def _shm_affordable(collection: Any, budget: Any) -> bool:
    """Can this disk-backed collection ride the shared-memory transport?

    True when the collection can estimate its full decoded size from
    headers alone and that size fits the memory budget's wave share (or no
    budget is set).  Exporting decodes every block exactly once in the
    parent; the segment then serves every kernel of every dispatch wave
    with zero further decode work.  When it does not fit, the engine
    pickles the collection object instead and workers decode lazily under
    their own bounded caches.
    """
    sizer = getattr(collection, "total_decoded_nbytes_estimate", None)
    if not callable(sizer):
        return False
    if budget is None:
        return True
    try:
        total = int(sizer())
    except Exception:  # pragma: no cover - estimation must never sink a run
        return False
    return total <= budget.wave_bytes


def _unpicklable_reason(objs: tuple) -> str | None:
    """None if all objects survive pickling, else a human-readable reason.

    Spawned workers receive their work by pickle (closures and lambdas
    cannot travel); fork inherits everything and skips this check.
    """
    try:
        pickle.dumps(objs)
        return None
    except Exception as exc:
        return f"work is not picklable for spawned workers ({exc})"
