"""Streaming trace ingestion: foreign PSV dumps → validated ``.rpq`` v2.

``ingest_trace`` is the one entry point.  It takes a directory (or list) of
plain/gzip LustreDU PSV dumps — huge, messy, untrusted — and produces an
archive directory the existing fused analysis pipeline consumes unchanged:
one ``.rpq`` v2 file per source dump, a ``manifest.json``, and (under the
``quarantine`` policy) one machine-readable ``.bad`` sidecar per damaged
source.

Design rules, in priority order:

1. **Never silently wrong.**  Every record either passes the full
   validation layer (:mod:`repro.ingest.validate`) or is accounted for —
   raised, skipped-and-counted, or quarantined with a reason.  Totals are
   conserved: ``lines == rows + rejected`` per file, asserted by the fuzz
   suites.
2. **Bounded memory.**  Sources stream through fixed-size record chunks;
   numeric columns accumulate as per-chunk NumPy arrays (8 B/field, far
   below the text width) and path strings flow straight into an
   incremental zlib compressor — a multi-GB dump never exists in memory,
   neither as text nor as one :class:`~repro.scan.snapshot.Snapshot`.
3. **Crash-safe and resumable.**  Outputs are written atomically; with a
   ``checkpoint`` journal each completed source file is recorded durably
   (the same :class:`~repro.query.journal.KernelJournal` machinery the
   fused pass uses), so a SIGKILL'd multi-hour ingest re-invoked with the
   same journal redoes only the in-flight file and converges on
   byte-identical outputs.
4. **Cooperative cancellation.**  A :class:`~repro.core.runcontrol.
   RunController` is polled between chunks and between files; deadline or
   signal stops raise a typed ``RunInterrupted`` naming the exact resume
   invocation.
"""

from __future__ import annotations

import base64
import calendar
import json
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.durable import atomic_write
from repro.ingest.reader import DEFAULT_CHUNK_RECORDS, RawRecord, TraceReader
from repro.ingest.validate import RecordValidator, ValidationLimits
from repro.scan.columnar import (
    column_block_meta,
    path_block_meta,
    read_columnar_header,
    write_columnar_blocks,
)
from repro.scan.errors import CorruptSnapshotError, IngestRecordError
from repro.scan.snapshot import COLUMN_DTYPES, NUMERIC_COLUMNS
from repro.scan.store import ON_ERROR_POLICIES, SnapshotFault

#: Source filename suffixes recognized when ingesting a directory.
TRACE_SUFFIXES = (".psv", ".psv.gz", ".txt", ".txt.gz")

#: Sidecar (quarantined-record) filename suffix.
SIDECAR_SUFFIX = ".bad"

_COMPRESSION_LEVEL = 6

#: Columns materialized per record (everything but the derived path_id).
_INGEST_COLUMNS = tuple(n for n in NUMERIC_COLUMNS if n != "path_id")


@dataclass
class IngestConfig:
    """Policy knobs for one ingest run."""

    #: degradation policy: ``raise`` stops at the first bad record,
    #: ``skip`` drops-and-counts, ``quarantine`` also writes ``.bad``
    #: sidecars with machine-readable reasons
    on_error: str = "quarantine"
    chunk_records: int = DEFAULT_CHUNK_RECORDS
    limits: ValidationLimits = field(default_factory=ValidationLimits)
    #: abort a source file (file-level fault) after this many bad records
    max_bad_records: int | None = None
    #: ... or when bad/(total) exceeds this ratio (checked per chunk after
    #: the first chunk, so a garbage file fails fast, not after gigabytes)
    max_bad_ratio: float | None = None

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, "
                f"got {self.on_error!r}"
            )
        if self.chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        if self.max_bad_records is not None and self.max_bad_records < 0:
            raise ValueError("max_bad_records must be >= 0")
        if self.max_bad_ratio is not None and not 0 <= self.max_bad_ratio <= 1:
            raise ValueError("max_bad_ratio must be in [0, 1]")


@dataclass
class IngestFileStats:
    """Outcome of one source file (journal payload — keep it picklable)."""

    source: str  #: source basename
    output: str | None  #: produced ``.rpq`` basename (None on file fault)
    label: str
    timestamp: int
    lines: int  #: records seen
    rows: int  #: records accepted into the archive
    rejected: int  #: records dropped (skipped or quarantined)
    by_field: dict[str, int]  #: rejected count per offending field
    bytes_read: int  #: uncompressed source bytes consumed
    output_bytes: int  #: stored ``.rpq`` size
    sidecar: str | None = None  #: ``.bad`` basename when one was written
    sidecar_crc32: int | None = None  #: CRC of the sidecar body (determinism)
    resumed: bool = False  #: restored from a checkpoint, not re-ingested
    #: high-water estimate of resident ingest state while this file ran
    peak_resident_bytes: int = 0


@dataclass
class IngestHealthReport:
    """What ingestion found, rolled up across the whole run.

    Merged into the archive's :class:`~repro.scan.store.
    ArchiveHealthReport` (its ``ingest`` field) when the ingested
    directory is analyzed, so one report covers the full
    trace → archive → analysis chain.
    """

    files: list[IngestFileStats] = field(default_factory=list)
    #: file-level failures (corrupt gzip, all-records-bad, unreadable)
    faults: list[SnapshotFault] = field(default_factory=list)
    #: high-water estimate of resident ingest state (column chunks,
    #: compressor, dedup digests), for --memory-budget accounting
    peak_resident_bytes: int = 0

    @property
    def records(self) -> int:
        return sum(f.lines for f in self.files)

    @property
    def rows(self) -> int:
        return sum(f.rows for f in self.files)

    @property
    def rejected(self) -> int:
        return sum(f.rejected for f in self.files)

    @property
    def resumed(self) -> int:
        return sum(1 for f in self.files if f.resumed)

    @property
    def degraded(self) -> bool:
        return bool(self.faults) or any(f.rejected for f in self.files)

    def summary(self) -> str:
        lines = [
            f"{len(self.files)} source file(s): {self.rows}/{self.records} "
            f"records ingested, {self.rejected} rejected, "
            f"{len(self.faults)} file fault(s)"
            + (f", {self.resumed} restored from checkpoint" if self.resumed else "")
        ]
        for f in self.files:
            if f.rejected or f.output is None:
                detail = ", ".join(
                    f"{field}:{n}" for field, n in sorted(f.by_field.items())
                )
                where = f" → {f.sidecar}" if f.sidecar else ""
                lines.append(
                    f"  {f.source}: {f.rejected} rejected ({detail}){where}"
                )
        for fault in self.faults:
            where = f" @{fault.offset}" if fault.offset is not None else ""
            lines.append(f"  {fault.action}: {fault.path}{where} — {fault.reason}")
        return "\n".join(lines)

    def fold_into(self, archive_health) -> None:
        """Attach to an :class:`~repro.scan.store.ArchiveHealthReport`."""
        archive_health.ingest = self


@dataclass
class IngestResult:
    """Return value of :func:`ingest_trace`."""

    out_dir: Path
    outputs: list[Path]
    report: IngestHealthReport


class _QuarantineSidecar:
    """Lazy, atomic JSONL writer for one source file's rejected records.

    The file is created only when the first record is quarantined, written
    through the same tmp + fsync + rename path as every other output, and
    carries a running CRC32 so resume/determinism checks can compare
    sidecars without re-reading them.
    """

    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.source = source
        self.count = 0
        self.crc32 = 0
        self._cm = None
        self._fh = None

    def write(self, err: IngestRecordError, rec: RawRecord) -> None:
        if self._fh is None:
            self._cm = atomic_write(self.path, "w", encoding="utf-8")
            self._fh = self._cm.__enter__()
            self._emit(
                {
                    "kind": "repro-ingest-sidecar",
                    "version": 1,
                    "source": self.source,
                }
            )
        entry = {
            "line": rec.lineno,
            "offset": rec.offset,
            "field": err.field,
            "reason": err.reason,
        }
        try:
            entry["raw"] = rec.raw.decode("utf-8")
        except UnicodeDecodeError:
            entry["raw_b64"] = base64.b64encode(rec.raw).decode("ascii")
        self._emit(entry)
        self.count += 1

    def _emit(self, obj: dict) -> None:
        line = json.dumps(obj, sort_keys=True) + "\n"
        self.crc32 = zlib.crc32(line.encode("utf-8"), self.crc32)
        self._fh.write(line)

    def commit(self) -> None:
        """Finish the atomic write (no-op when nothing was quarantined)."""
        if self._cm is not None:
            self._cm.__exit__(None, None, None)
            self._cm = self._fh = None

    def abort(self, exc: BaseException) -> None:
        """Discard the temp file after a failure mid-file."""
        if self._cm is not None:
            self._cm.__exit__(type(exc), exc, exc.__traceback__)
            self._cm = self._fh = None


class _ColumnAccumulator:
    """Bounded-memory columnar builder for one output snapshot.

    Records land row-by-row in preallocated dtype-correct NumPy chunk
    buffers — no boxed Python ints, so a chunk costs its array bytes, not
    ~30x that in object overhead and allocator churn.  Every ``flush()``
    (once per reader chunk, or when a buffer fills) feeds the filled
    prefix — and the chunk's path strings — into one incremental zlib
    compressor per block.  Nothing uncompressed outlives its chunk, so
    resident state scales with the *compressed* output (typically a small
    fraction of the source text), not with total rows.  ``finish()``
    flushes each stream and returns ready-to-write v2 blocks.

    Writing validated values straight into the final dtypes is safe
    precisely because :class:`~repro.ingest.validate.RecordValidator`
    range-checks every field against those dtypes before ``add()``.
    """

    def __init__(self, chunk_records: int = DEFAULT_CHUNK_RECORDS) -> None:
        self._cap = max(1, int(chunk_records))
        self._encoders = {
            name: zlib.compressobj(_COMPRESSION_LEVEL) for name in _INGEST_COLUMNS
        }
        self._pieces: dict[str, list[bytes]] = {
            name: [] for name in _INGEST_COLUMNS
        }
        self._raw_bytes = {name: 0 for name in _INGEST_COLUMNS}
        self._bufs = {
            name: np.empty(self._cap, dtype=COLUMN_DTYPES[name])
            for name in _INGEST_COLUMNS
        }
        self._n = 0
        self._pending_paths: list[str] = []
        self._compress = zlib.compressobj(_COMPRESSION_LEVEL)
        self._compressed: list[bytes] = []
        self._paths_raw_bytes = 0
        self._first_path = True
        self.rows = 0
        self.resident_bytes = 0

    def add(self, rec) -> None:
        i = self._n
        if i == self._cap:
            self.flush()
            i = 0
        b = self._bufs
        b["ino"][i] = rec.ino
        b["mode"][i] = rec.mode
        b["uid"][i] = rec.uid
        b["gid"][i] = rec.gid
        b["atime"][i] = rec.atime
        b["mtime"][i] = rec.mtime
        b["ctime"][i] = rec.ctime
        b["stripe_count"][i] = rec.stripe_count
        b["stripe_start"][i] = rec.stripe_start
        self._pending_paths.append(rec.path)
        self._n = i + 1
        self.rows += 1

    def flush(self) -> None:
        if not self._n:
            return
        for name in _INGEST_COLUMNS:
            filled = self._bufs[name][: self._n]
            piece = self._encoders[name].compress(filled.tobytes())
            if piece:
                self._pieces[name].append(piece)
                self.resident_bytes += len(piece)
            self._raw_bytes[name] += filled.nbytes
        self._n = 0
        text = "\n".join(self._pending_paths)
        if not self._first_path:
            text = "\n" + text
        self._first_path = False
        raw = text.encode("utf-8")
        self._paths_raw_bytes += len(raw)
        piece = self._compress.compress(raw)
        if piece:
            self._compressed.append(piece)
            self.resident_bytes += len(piece)
        self._pending_paths = []

    def finish(self) -> list[tuple[bytes, dict]]:
        self.flush()
        blocks: list[tuple[bytes, dict]] = []
        for name in _INGEST_COLUMNS:
            self._pieces[name].append(self._encoders[name].flush())
            blob = b"".join(self._pieces[name])
            self._pieces[name] = []  # free as we go
            blocks.append((
                blob,
                column_block_meta(
                    name, COLUMN_DTYPES[name], self.rows, blob,
                    self._raw_bytes[name],
                ),
            ))
        self._compressed.append(self._compress.flush())
        path_blob = b"".join(self._compressed)
        self._compressed = []
        blocks.append(
            (path_blob, path_block_meta(path_blob, self.rows, self._paths_raw_bytes))
        )
        return blocks


def _trace_label(path: Path) -> str:
    """Snapshot label from a source filename (suffixes stripped)."""
    name = path.name
    for suffix in sorted(TRACE_SUFFIXES, key=len, reverse=True):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return path.stem


def _label_timestamp(label: str, max_ctime: int) -> int:
    """Snapshot timestamp: the LustreDU date-stamped filename when
    parsable (``YYYYMMDD...``), else the newest ctime observed."""
    digits = label[:8]
    if len(digits) == 8 and digits.isdigit():
        year, month, day = int(digits[:4]), int(digits[4:6]), int(digits[6:8])
        if 1980 <= year <= 2100 and 1 <= month <= 12 and 1 <= day <= 31:
            try:
                return calendar.timegm((year, month, day, 0, 0, 0))
            except (ValueError, OverflowError):
                pass
    return max(max_ctime, 0)


def plan_sources(sources) -> list[Path]:
    """Normalize the ``sources`` argument into a sorted, validated list."""
    if isinstance(sources, (str, Path)):
        root = Path(sources)
        if root.is_dir():
            found = sorted(
                p
                for p in root.iterdir()
                if p.is_file()
                and any(p.name.endswith(s) for s in TRACE_SUFFIXES)
            )
            if not found:
                raise FileNotFoundError(
                    f"no trace files ({'/'.join(TRACE_SUFFIXES)}) under {root}"
                )
            paths = found
        else:
            paths = [root]
    else:
        paths = [Path(p) for p in sources]
    if not paths:
        raise ValueError("no source files given")
    missing = [str(p) for p in paths if not p.is_file()]
    if missing:
        raise FileNotFoundError(f"missing source file(s): {', '.join(missing)}")
    labels: dict[str, Path] = {}
    for p in paths:
        label = _trace_label(p)
        if label in labels:
            raise ValueError(
                f"sources {labels[label].name} and {p.name} both map to "
                f"snapshot label {label!r} — rename one"
            )
        labels[label] = p
    return paths


def ingest_file(
    source: str | Path,
    out_dir: str | Path,
    config: IngestConfig | None = None,
    controller=None,
) -> IngestFileStats:
    """Ingest one source dump into ``out_dir``; returns its stats.

    Raises :class:`~repro.scan.errors.IngestRecordError` on the first bad
    record under ``on_error="raise"``, and :class:`~repro.scan.errors.
    CorruptSnapshotError` for file-level damage (corrupt gzip, every
    record rejected, bad-record limits exceeded) under any policy — the
    *caller* (``ingest_trace``) applies the file-level degradation policy.
    """
    config = config if config is not None else IngestConfig()
    source = Path(source)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    label = _trace_label(source)
    reader = TraceReader(source, chunk_records=config.chunk_records)
    validator = RecordValidator(str(source), config.limits)
    sidecar = _QuarantineSidecar(
        out_dir / f"{label}{SIDECAR_SUFFIX}", source.name
    )
    acc = _ColumnAccumulator(chunk_records=config.chunk_records)
    quarantining = config.on_error == "quarantine"
    raising = config.on_error == "raise"
    max_ctime = 0
    peak_resident = 0
    try:
        for chunk in reader.chunks():
            if controller is not None:
                controller.cancellation_point(f"ingest of {source.name}")
            for rec in chunk:
                if not rec.raw:
                    continue  # blank line, not a record
                try:
                    parsed = validator.validate(rec)
                except IngestRecordError as err:
                    if raising:
                        raise
                    if quarantining:
                        sidecar.write(err, rec)
                    continue
                acc.add(parsed)
                if parsed.ctime > max_ctime:
                    max_ctime = parsed.ctime
            acc.flush()
            resident = acc.resident_bytes + validator.resident_bytes
            if resident > peak_resident:
                peak_resident = resident
            self_check_bad = validator.stats.rejected
            if (
                config.max_bad_records is not None
                and self_check_bad > config.max_bad_records
            ):
                raise CorruptSnapshotError(
                    source,
                    f"{self_check_bad} bad records exceed the "
                    f"--max-bad-records limit ({config.max_bad_records})",
                )
            if (
                config.max_bad_ratio is not None
                and validator.stats.records >= config.chunk_records
                and self_check_bad
                > config.max_bad_ratio * validator.stats.records
            ):
                raise CorruptSnapshotError(
                    source,
                    f"{self_check_bad}/{validator.stats.records} records bad "
                    f"exceeds the --max-bad-ratio limit ({config.max_bad_ratio})",
                )
        if acc.rows == 0:
            raise CorruptSnapshotError(
                source,
                f"no valid records ({validator.stats.rejected} rejected, "
                f"{reader.lines_read} lines)",
            )
    except BaseException as exc:
        sidecar.abort(exc)
        raise
    sidecar.commit()
    timestamp = _label_timestamp(label, max_ctime)
    blocks = acc.finish()
    output = out_dir / f"{label}.rpq"
    output_bytes = write_columnar_blocks(output, label, timestamp, acc.rows, blocks)
    return IngestFileStats(
        source=source.name,
        output=output.name,
        label=label,
        timestamp=timestamp,
        lines=validator.stats.records,
        rows=acc.rows,
        rejected=validator.stats.rejected,
        by_field=dict(validator.stats.by_field),
        bytes_read=reader.bytes_read,
        output_bytes=output_bytes,
        sidecar=sidecar.path.name if sidecar.count else None,
        sidecar_crc32=sidecar.crc32 if sidecar.count else None,
        peak_resident_bytes=peak_resident,
    )


def ingest_trace(
    sources,
    out_dir: str | Path,
    config: IngestConfig | None = None,
    checkpoint: str | Path | None = None,
    controller=None,
    manifest_config=None,
    deltas: bool = True,
) -> IngestResult:
    """Ingest foreign trace dump(s) into an analyzable archive directory.

    Parameters
    ----------
    sources:
        A directory (every ``.psv``/``.psv.gz``/``.txt``/``.txt.gz`` file
        inside), one file, or an explicit list of files.
    out_dir:
        Archive directory; created if needed.  Gets one ``.rpq`` per
        source, a ``manifest.json``, and ``.bad`` sidecars under the
        quarantine policy.
    config:
        :class:`IngestConfig` (policy, chunking, validation limits).
    checkpoint:
        Journal path for crash-safe resume; completed source files are
        recorded durably and skipped on re-invocation (the journal is
        deleted after a fully successful run).
    controller:
        Optional :class:`~repro.core.runcontrol.RunController`; its
        deadline/signals interrupt between chunks/files with a typed
        ``RunInterrupted``, and its memory budget shrinks the record
        chunk size and is checked against the resident-state estimate.
    manifest_config:
        :class:`~repro.synth.driver.SimulationConfig` whose fingerprint
        is written to the archive manifest (defaults to a default-config
        fingerprint, letting ``analyze_archive`` validate trivially).
    deltas:
        With ``True`` (the default) a post-pass chains ``.rpd`` delta
        sidecars between consecutive ingested snapshots (archive
        timestamp order, two snapshots resident at a time), so a foreign
        archive supports ``analyze_archive(incremental=True)`` exactly
        like a simulated one.  Needs at least two usable snapshots.
    """
    from repro.core.manifest import write_manifest
    from repro.query.journal import KernelJournal
    from repro.synth.driver import SimulationConfig

    config = config if config is not None else IngestConfig()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = plan_sources(sources)

    effective = config
    budget = getattr(controller, "memory_budget", None)
    if budget is not None:
        # a chunk record costs ~500 B transient (RawRecord + raw line
        # bytes + path string + numpy row) and allocator fragmentation
        # tracks the chunk high-water mark, so keep one chunk to a small
        # fraction of the budget
        cap = max(1024, int(budget.limit_bytes) // 8192)
        if cap < config.chunk_records:
            effective = IngestConfig(
                on_error=config.on_error,
                chunk_records=cap,
                limits=config.limits,
                max_bad_records=config.max_bad_records,
                max_bad_ratio=config.max_bad_ratio,
            )

    journal = None
    done: dict[int, IngestFileStats] = {}
    if checkpoint is not None:
        fingerprint = json.loads(
            json.dumps(
                {
                    "sizes": {p.name: p.stat().st_size for p in paths},
                    "on_error": effective.on_error,
                    "limits": {
                        k: list(v) if isinstance(v, tuple) else v
                        for k, v in vars(effective.limits).items()
                    },
                }
            )
        )
        journal = KernelJournal(
            checkpoint,
            kernels=["ingest"],
            labels=[p.name for p in paths],
            fingerprint=fingerprint,
        )
        done = journal.load()

    report = IngestHealthReport()
    outputs: list[Path] = []
    records: list[dict] = []
    resume_hint = (
        f"re-run the same ingest with --checkpoint {checkpoint} to resume "
        "at the first unfinished source file"
        if checkpoint is not None
        else "re-run the same ingest (completed outputs are overwritten "
        "deterministically)"
    )
    try:
        for index, source in enumerate(paths):
            if controller is not None:
                controller.cancellation_point(
                    f"ingest after {len(report.files)}/{len(paths)} files",
                    partial=report,
                    resume_hint=resume_hint,
                )
            prior = done.get(index)
            if prior is not None and _restorable(out_dir, prior):
                prior.resumed = True
                report.files.append(prior)
                if prior.output is not None:
                    outputs.append(out_dir / prior.output)
                    records.append(
                        {
                            "label": prior.label,
                            "file": prior.output,
                            "rows": prior.rows,
                        }
                    )
                continue
            try:
                stats = ingest_file(
                    source, out_dir, effective, controller=controller
                )
            except (CorruptSnapshotError, OSError) as exc:
                if effective.on_error == "raise" or not isinstance(
                    exc, CorruptSnapshotError
                ):
                    raise
                fault = SnapshotFault(
                    path=str(source),
                    reason=exc.reason,
                    offset=exc.offset,
                    action="skipped",
                )
                report.faults.append(fault)
                warnings.warn(
                    f"trace file {source.name} failed ingestion: "
                    f"{exc.reason} — skipped",
                    RuntimeWarning,
                    stacklevel=2,
                )
                stats = IngestFileStats(
                    source=source.name,
                    output=None,
                    label=_trace_label(source),
                    timestamp=0,
                    lines=0,
                    rows=0,
                    rejected=0,
                    by_field={},
                    bytes_read=0,
                    output_bytes=0,
                )
            report.files.append(stats)
            if stats.peak_resident_bytes > report.peak_resident_bytes:
                report.peak_resident_bytes = stats.peak_resident_bytes
            if (
                budget is not None
                and stats.peak_resident_bytes > budget.limit_bytes
            ):
                warnings.warn(
                    f"ingest of {stats.source} held an estimated "
                    f"{stats.peak_resident_bytes:,} B resident, over the "
                    f"{budget.limit_bytes:,} B memory budget (dedup table "
                    "grows with unique paths; raise the budget or split "
                    "the dump)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            if stats.output is not None:
                outputs.append(out_dir / stats.output)
                records.append(
                    {"label": stats.label, "file": stats.output, "rows": stats.rows}
                )
            if journal is not None:
                journal.append(index, stats)
    finally:
        if journal is not None:
            journal.close()
    if not outputs:
        raise CorruptSnapshotError(
            out_dir,
            f"ingestion produced no usable snapshots "
            f"({len(report.faults)} file fault(s))",
        )
    manifest_config = (
        manifest_config if manifest_config is not None else SimulationConfig()
    )
    extra = {
        "ingest": {
            "sources": [f.source for f in report.files],
            "records": report.records,
            "rows": report.rows,
            "rejected": report.rejected,
            "file_faults": len(report.faults),
            "on_error": effective.on_error,
        }
    }
    if deltas and len(outputs) > 1:
        from repro.scan.delta import delta_config

        _write_delta_sidecars(out_dir, report.files, controller=controller)
        extra["deltas"] = delta_config()
    write_manifest(
        out_dir,
        manifest_config,
        snapshots=records,
        extra=extra,
    )
    if journal is not None:
        journal.discard()
    return IngestResult(out_dir=out_dir, outputs=outputs, report=report)


def _write_delta_sidecars(
    out_dir: Path, files: list[IngestFileStats], controller=None
) -> list[Path]:
    """Chain ``.rpd`` sidecars between consecutive ingested snapshots.

    Snapshots are visited in archive order — timestamp, ties broken by
    filename, matching :class:`~repro.scan.store.DiskSnapshotCollection` —
    and re-read sequentially into one fresh path table so the sidecars'
    id assignment mirrors an analysis-time load.  Only two snapshots are
    resident at any moment, preserving the ingest's bounded-memory
    contract; skipped file faults simply drop out of the chain (the
    surviving window is what the analyzer sees).  Deterministic and
    idempotent: a resumed or re-run ingest rewrites identical sidecars.
    """
    from repro.scan.columnar import read_columnar
    from repro.scan.delta import compute_delta, sidecar_path, write_delta
    from repro.scan.paths import PathTable

    ordered = sorted(
        (f for f in files if f.output is not None),
        key=lambda f: (f.timestamp, f.output),
    )
    table = PathTable()
    prev = None
    written: list[Path] = []
    for stats in ordered:
        if controller is not None:
            controller.cancellation_point(
                f"delta sidecars after {len(written)} of {len(ordered) - 1}",
                resume_hint="re-run the same ingest; outputs and sidecars "
                "are rewritten deterministically",
            )
        cur = read_columnar(out_dir / stats.output, table)
        if prev is not None:
            dest = sidecar_path(out_dir, cur.label)
            write_delta(compute_delta(prev, cur), dest)
            written.append(dest)
        prev = cur
    return written


def _restorable(out_dir: Path, stats: IngestFileStats) -> bool:
    """A journaled file counts as done only if its output still checks out."""
    if stats.output is None:
        return True  # the fault was recorded; nothing on disk to verify
    path = out_dir / stats.output
    try:
        header = read_columnar_header(path)
    except (OSError, CorruptSnapshotError):
        return False
    return int(header["rows"]) == stats.rows
