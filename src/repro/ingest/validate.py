"""Per-record validation: the trust boundary for foreign trace records.

:func:`repro.scan.psv.parse_record` answers "is this line *syntactically* a
PSV record"; this module answers "is the parsed record *plausible enough to
analyze*".  Every rejection is a typed
:class:`~repro.scan.errors.IngestRecordError` naming the file, line, and
field, so the degradation policy upstream can quarantine it with a
machine-readable reason.

The checks (all limits configurable via :class:`ValidationLimits`):

* **path** — non-empty, absolute (configurable), no embedded control
  characters (the columnar string table is newline-framed, so a control
  byte would corrupt the archive), bounded length, no duplicate of an
  earlier record (duplicate paths silently break the analyses'
  ``assume_unique`` set algebra);
* **encoding** — strict UTF-8; a latin-1 line in a "UTF-8" dump is a
  quarantined record, not a crash;
* **numeric ranges** — uid/gid/stripe fields must fit their archive column
  dtypes (int32), inode must be positive int64;
* **octal mode sanity** — the file-type bits must name a real type
  (regular/directory/symlink by default) and the mode must fit uint32;
* **timestamp window/ordering** — atime/ctime/mtime inside a configurable
  window (defaults: epoch .. 2100), so a scrambled field that still parses
  as an integer cannot plant a year-30000 file in an age analysis;
* **OST-list consistency** — stripe indices unique, inside ``[0,
  ost_count)`` when the OST count is known, list length bounded by
  Lustre's stripe-count limit, and directories must not claim objects.

Duplicate detection uses a 64-bit BLAKE2b digest set rather than the path
strings themselves (a few hundred MB of a multi-GB dump would otherwise
live in the dedup set); the false-positive odds for even 10⁸ records are
~10⁻⁴, and a false positive merely quarantines one valid line with an
explicit reason.
"""

from __future__ import annotations

import hashlib
import stat as stat_mod
from dataclasses import dataclass, field

import numpy as np

from repro.ingest.reader import RawRecord
from repro.scan.errors import IngestRecordError
from repro.scan.psv import ParsedRecord, parse_record

#: Lustre's historical maximum stripe count for one file.
LUSTRE_MAX_STRIPES = 2000

#: File types present in a namespace scan.  LustreDU reports everything the
#: MDS knows; sockets/FIFOs/devices on a scratch FS are almost always
#: scanner bugs, so the default admits only the types the paper analyzes.
DEFAULT_ALLOWED_TYPES = (
    stat_mod.S_IFREG,
    stat_mod.S_IFDIR,
    stat_mod.S_IFLNK,
)

#: 2100-01-01T00:00:00Z — far beyond any plausible scan date.
_YEAR_2100 = 4102444800


@dataclass(frozen=True)
class ValidationLimits:
    """Tunable bounds for one ingest run (defaults fit real LustreDU)."""

    #: longest accepted raw line; longer lines are quarantined unparsed
    max_line_bytes: int = 1 << 16
    #: PATH_MAX on Lustre clients
    max_path_len: int = 4096
    #: reject relative paths (a namespace dump is rooted)
    require_absolute: bool = True
    #: inclusive timestamp window for atime/ctime/mtime
    min_timestamp: int = 0
    max_timestamp: int = _YEAR_2100
    #: file-type bits (``mode & S_IFMT``) accepted
    allowed_types: tuple[int, ...] = DEFAULT_ALLOWED_TYPES
    #: OSTs in the source file system; None disables the index range check
    ost_count: int | None = None
    max_stripe_count: int = LUSTRE_MAX_STRIPES
    #: quarantine records whose path repeats an earlier record's
    reject_duplicate_paths: bool = True

    def __post_init__(self) -> None:
        if self.max_line_bytes < 16:
            raise ValueError("max_line_bytes must be >= 16")
        if self.min_timestamp > self.max_timestamp:
            raise ValueError("min_timestamp must be <= max_timestamp")
        if self.ost_count is not None and self.ost_count < 1:
            raise ValueError("ost_count must be >= 1 (or None)")


_INT32_MAX = 2**31 - 1
_INT64_MAX = 2**63 - 1
_UINT32_MAX = 2**32 - 1


class _DigestSet:
    """Open-addressing uint64 hash set over a flat NumPy table.

    A Python ``set`` of 64-bit digest ints costs ~60 B per key (boxed int
    + hash-table slot); this table costs ~11 B per key at its 70% load
    ceiling, which over a 10⁸-record dump is the difference between
    fitting a memory budget and tripling it.  Keys are BLAKE2b digests —
    already uniform — so the probe start is just ``key & mask``.
    """

    __slots__ = ("_table", "_mask", "_n")

    def __init__(self, capacity: int = 1 << 16) -> None:
        self._table = np.zeros(capacity, dtype=np.uint64)  # 0 = empty slot
        self._mask = capacity - 1
        self._n = 0

    def add(self, key: int) -> bool:
        """Insert ``key``; True when it was not already present."""
        if key == 0:
            key = 1  # 0 is the empty-slot sentinel
        table, mask = self._table, self._mask
        i = key & mask
        while True:
            cur = int(table[i])
            if cur == 0:
                table[i] = key
                self._n += 1
                if self._n * 10 > (mask + 1) * 7:
                    self._grow()
                return True
            if cur == key:
                return False
            i = (i + 1) & mask

    def _grow(self) -> None:
        old = self._table[self._table != 0]
        self._table = np.zeros((self._mask + 1) * 2, dtype=np.uint64)
        self._mask = self._table.size - 1
        self._n = 0
        for key in old.tolist():
            self.add(key)

    @property
    def nbytes(self) -> int:
        return self._table.nbytes


@dataclass
class ValidationStats:
    """Counters kept by one validator (one source file)."""

    records: int = 0
    ok: int = 0
    rejected: int = 0
    by_field: dict[str, int] = field(default_factory=dict)

    def count(self, err: IngestRecordError) -> None:
        self.rejected += 1
        self.by_field[err.field] = self.by_field.get(err.field, 0) + 1


class RecordValidator:
    """Decode + parse + semantically validate raw records of one file."""

    def __init__(self, source: str, limits: ValidationLimits | None = None) -> None:
        self.source = str(source)
        self.limits = limits if limits is not None else ValidationLimits()
        self.stats = ValidationStats()
        self._seen_digests = _DigestSet()

    @property
    def resident_bytes(self) -> int:
        """Bytes of validator state resident right now (the dedup table)."""
        return self._seen_digests.nbytes

    def validate(self, rec: RawRecord) -> ParsedRecord:
        """Return the validated record or raise a typed error."""
        self.stats.records += 1
        try:
            parsed = self._validate(rec)
        except IngestRecordError as err:
            self.stats.count(err)
            raise
        self.stats.ok += 1
        return parsed

    # -- checks, in cheap-first order ---------------------------------------

    def _validate(self, rec: RawRecord) -> ParsedRecord:
        lim = self.limits
        if len(rec.raw) > lim.max_line_bytes:
            raise IngestRecordError(
                self.source, rec.lineno, "record",
                f"line of {len(rec.raw)} bytes exceeds the "
                f"{lim.max_line_bytes}-byte limit",
            )
        try:
            line = rec.raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise IngestRecordError(
                self.source, rec.lineno, "encoding",
                f"not valid UTF-8 at byte {exc.start} "
                f"({rec.raw[exc.start:exc.start + 4]!r})",
            ) from None
        parsed = parse_record(line, self.source, rec.lineno)
        self._check_path(parsed.path, rec.lineno)
        self._check_numeric(parsed, rec.lineno)
        self._check_mode(parsed.mode, rec.lineno)
        self._check_timestamps(parsed, rec.lineno)
        self._check_ost(parsed, rec.lineno)
        if lim.reject_duplicate_paths:
            digest = int.from_bytes(
                hashlib.blake2b(
                    parsed.path.encode("utf-8"), digest_size=8
                ).digest(),
                "little",
            )
            if not self._seen_digests.add(digest):
                raise IngestRecordError(
                    self.source, rec.lineno, "path",
                    f"duplicate path {parsed.path!r} (an earlier record "
                    "already claimed it)",
                )
        return parsed

    def _check_path(self, path: str, lineno: int) -> None:
        lim = self.limits
        if len(path) > lim.max_path_len:
            raise IngestRecordError(
                self.source, lineno, "path",
                f"path of {len(path)} chars exceeds the "
                f"{lim.max_path_len}-char limit",
            )
        if lim.require_absolute and not path.startswith("/"):
            raise IngestRecordError(
                self.source, lineno, "path", f"not absolute: {path[:80]!r}"
            )
        for ch in path:
            if ord(ch) < 0x20 or ch == "\x7f":
                raise IngestRecordError(
                    self.source, lineno, "path",
                    f"control character {ch!r} in path (would corrupt the "
                    "newline-framed archive string table)",
                )

    def _check_numeric(self, rec: ParsedRecord, lineno: int) -> None:
        for name, value, hi in (
            ("uid", rec.uid, _INT32_MAX),
            ("gid", rec.gid, _INT32_MAX),
        ):
            if not 0 <= value <= hi:
                raise IngestRecordError(
                    self.source, lineno, name,
                    f"{value} outside [0, {hi}] (archive column is int32)",
                )
        if not 0 < rec.ino <= _INT64_MAX:
            raise IngestRecordError(
                self.source, lineno, "ino",
                f"inode {rec.ino} outside (0, 2^63)",
            )

    def _check_mode(self, mode: int, lineno: int) -> None:
        if not 0 <= mode <= _UINT32_MAX:
            raise IngestRecordError(
                self.source, lineno, "mode",
                f"mode {mode:o} does not fit uint32",
            )
        ftype = stat_mod.S_IFMT(mode)
        if ftype not in self.limits.allowed_types:
            names = "/".join(f"{t:o}" for t in self.limits.allowed_types)
            raise IngestRecordError(
                self.source, lineno, "mode",
                f"file-type bits {ftype:o} not an accepted type ({names})",
            )

    def _check_timestamps(self, rec: ParsedRecord, lineno: int) -> None:
        lim = self.limits
        for name, value in (
            ("atime", rec.atime), ("ctime", rec.ctime), ("mtime", rec.mtime)
        ):
            if not lim.min_timestamp <= value <= lim.max_timestamp:
                raise IngestRecordError(
                    self.source, lineno, name,
                    f"{value} outside the accepted window "
                    f"[{lim.min_timestamp}, {lim.max_timestamp}]",
                )

    def _check_ost(self, rec: ParsedRecord, lineno: int) -> None:
        lim = self.limits
        if not rec.ost:
            return
        if stat_mod.S_IFMT(rec.mode) == stat_mod.S_IFDIR:
            raise IngestRecordError(
                self.source, lineno, "ost",
                f"directory claims {len(rec.ost)} OST objects "
                "(directories have no stripes)",
            )
        if len(rec.ost) > lim.max_stripe_count:
            raise IngestRecordError(
                self.source, lineno, "ost",
                f"{len(rec.ost)} stripes exceed the "
                f"{lim.max_stripe_count}-stripe limit",
            )
        seen: set[int] = set()
        for idx, _objid in rec.ost:
            if idx < 0 or (lim.ost_count is not None and idx >= lim.ost_count):
                hi = lim.ost_count if lim.ost_count is not None else "inf"
                raise IngestRecordError(
                    self.source, lineno, "ost",
                    f"stripe index {idx} outside [0, {hi})",
                )
            if idx > _INT32_MAX:
                raise IngestRecordError(
                    self.source, lineno, "ost",
                    f"stripe index {idx} does not fit int32",
                )
            if idx in seen:
                raise IngestRecordError(
                    self.source, lineno, "ost",
                    f"stripe index {idx} listed twice (inconsistent layout)",
                )
            seen.add(idx)
