"""Chunked, bounded-memory record reader for foreign trace dumps.

A real LustreDU dump is a multi-GB text file (possibly gzip-compressed,
possibly damaged in transit) whose lines cannot be trusted: mixed
encodings, embedded control bytes, truncated tails.  The reader therefore
works at the *bytes* level — framing on ``\\n`` only — and leaves per-line
decoding to the validation layer, where a bad line becomes a typed,
quarantinable :class:`~repro.scan.errors.IngestRecordError` instead of a
``UnicodeDecodeError`` that kills a multi-hour run.

Guarantees:

* memory is bounded by ``buffer_bytes + chunk_records * max_line`` — the
  file is never slurped, whatever its size;
* every record carries its 1-based line number and the byte offset of its
  first byte (uncompressed offset for gzip sources), so errors and
  checkpoints are exact;
* a corrupt gzip stream raises a typed
  :class:`~repro.scan.errors.CorruptSnapshotError` carrying the offset
  reached — file-level corruption is *file-level* fault handling, never a
  per-record error.
"""

from __future__ import annotations

import gzip
import zlib
from collections.abc import Iterator
from pathlib import Path
from typing import NamedTuple

from repro.scan.errors import CorruptSnapshotError

#: RFC 1952 gzip magic; sniffed rather than trusting the file extension
#: (foreign dumps are routinely misnamed).
GZIP_MAGIC = b"\x1f\x8b"

#: Default records per yielded chunk — the unit of validation, cancellation
#: checks, and columnar accumulation.
DEFAULT_CHUNK_RECORDS = 65536

_READ_SIZE = 1 << 20  # 1 MiB buffered reads


class RawRecord(NamedTuple):
    """One undecoded line of a trace file."""

    lineno: int  #: 1-based line number
    offset: int  #: byte offset of the line start (uncompressed for gzip)
    raw: bytes  #: line content without the trailing newline


def sniff_gzip(path: str | Path) -> bool:
    """True when ``path`` starts with the gzip magic bytes."""
    with open(path, "rb") as fh:
        return fh.read(2) == GZIP_MAGIC


class TraceReader:
    """Stream a plain or gzip trace file as chunks of :class:`RawRecord`.

    Iteration yields ``list[RawRecord]`` chunks of at most
    ``chunk_records`` lines.  ``skip_records`` fast-forwards past already
    ingested lines (the resume path) without yielding them — they are
    still read (a gzip stream cannot be seeked cheaply) but never
    materialized as records.
    """

    def __init__(
        self,
        path: str | Path,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        max_line_bytes: int | None = None,
    ) -> None:
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        self.path = Path(path)
        self.chunk_records = int(chunk_records)
        self.max_line_bytes = max_line_bytes
        self.compressed = sniff_gzip(self.path)
        #: bytes consumed so far (uncompressed), updated as chunks yield
        self.bytes_read = 0
        #: lines seen so far (including skipped ones)
        self.lines_read = 0

    def chunks(self, skip_records: int = 0) -> Iterator[list[RawRecord]]:
        raw = open(self.path, "rb")
        fh = gzip.GzipFile(fileobj=raw) if self.compressed else raw
        src = str(self.path)
        lineno = 0
        offset = 0
        pending = b""
        out: list[RawRecord] = []
        try:
            while True:
                try:
                    data = fh.read(_READ_SIZE)
                except (gzip.BadGzipFile, EOFError, zlib.error) as exc:
                    # truncated or bit-flipped compressed stream; a genuine
                    # media OSError on a plain file propagates untouched
                    # (the caller's transient-I/O policy owns those)
                    raise CorruptSnapshotError(
                        src,
                        f"gzip stream corrupt after {offset} uncompressed "
                        f"bytes ({exc})",
                        offset=offset,
                    ) from exc
                if not data:
                    break
                buf = pending + data
                lines = buf.split(b"\n")
                pending = lines.pop()
                for line in lines:
                    lineno += 1
                    if self._keep(lineno, skip_records):
                        out.append(RawRecord(lineno, offset, line))
                    offset += len(line) + 1
                    if len(out) >= self.chunk_records:
                        self.bytes_read = offset
                        self.lines_read = lineno
                        yield out
                        out = []
            if pending:
                # final line without a trailing newline (truncated tail or
                # just an unterminated last record) — still a record
                lineno += 1
                if self._keep(lineno, skip_records):
                    out.append(RawRecord(lineno, offset, pending))
                offset += len(pending)
            self.bytes_read = offset
            self.lines_read = lineno
            if out:
                yield out
        finally:
            fh.close()
            if fh is not raw:
                raw.close()

    @staticmethod
    def _keep(lineno: int, skip_records: int) -> bool:
        return lineno > skip_records
