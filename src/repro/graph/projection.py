"""Bipartite projections of the file generation network.

The paper analyzes the bipartite user–project graph directly; its
collaboration question ("two users generated files in the same project",
§4.3.3) is exactly the **user projection** — users connected when they
share a project.  The projection makes standard one-mode measures
available: weighted collaboration degree, local clustering ("do my
collaborators collaborate with each other?"), and team cohesion.
"""

from __future__ import annotations

import numpy as np

from repro.graph.core import Graph


def project_bipartite(
    graph: Graph, left_size: int, project_left: bool = True
) -> tuple[Graph, dict[tuple[int, int], int]]:
    """One-mode projection of a bipartite graph.

    Vertices ``0..left_size-1`` are the left class (users); the rest are
    the right class (projects).  Returns the projected graph over the
    chosen class plus a weight map ``(u, v) → number of shared right
    vertices`` (u < v, in the projected vertex numbering).
    """
    if not 0 <= left_size <= graph.n:
        raise ValueError("left_size out of range")
    if project_left:
        members = range(left_size)
        offset = 0
        n_out = left_size
    else:
        members = range(left_size, graph.n)
        offset = left_size
        n_out = graph.n - left_size
    weights: dict[tuple[int, int], int] = {}
    # for each right-class vertex, connect all pairs of its neighbors
    other = range(left_size, graph.n) if project_left else range(left_size)
    for hub in other:
        nbrs = sorted(int(v) - offset for v in graph.neighbors(hub))
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1:]:
                key = (a, b)
                weights[key] = weights.get(key, 0) + 1
    del members
    if weights:
        edges = np.array(list(weights), dtype=np.int64)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return Graph.from_edges(n_out, edges), weights


def clustering_coefficient(graph: Graph, v: int) -> float:
    """Local clustering: closed neighbor pairs / possible neighbor pairs."""
    nbrs = graph.neighbors(v)
    k = int(nbrs.size)
    if k < 2:
        return 0.0
    nbr_set = set(int(x) for x in nbrs)
    closed = 0
    for u in nbrs:
        for w in graph.neighbors(int(u)):
            if int(w) in nbr_set:
                closed += 1
    # each closed pair counted twice (u→w and w→u)
    return closed / (k * (k - 1))


def mean_clustering(graph: Graph, sample: np.ndarray | None = None) -> float:
    """Average local clustering over all (or sampled) vertices with k ≥ 2."""
    vertices = np.arange(graph.n) if sample is None else np.asarray(sample)
    values = [
        clustering_coefficient(graph, int(v))
        for v in vertices
        if graph.degree(int(v)) >= 2
    ]
    return float(np.mean(values)) if values else 0.0
