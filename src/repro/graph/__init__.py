"""Graph substrate for the data-sharing analysis (§4.3).

A small self-contained graph library — the paper ran its network analysis on
Spark; we provide the same primitives over a CSR adjacency structure:
connected components (union-find), BFS distances, exact and double-sweep
diameter, degree statistics, and closeness/betweenness centrality (Brandes).

``networkx`` is intentionally *not* used here — it serves only as a test
oracle in the test suite.
"""

from repro.graph.core import Graph
from repro.graph.components import ConnectedComponents, connected_components
from repro.graph.traversal import bfs_distances, double_sweep_diameter, exact_diameter, eccentricity
from repro.graph.centrality import betweenness_centrality, closeness_centrality, degree_centrality
from repro.graph.unionfind import UnionFind

__all__ = [
    "Graph",
    "ConnectedComponents",
    "connected_components",
    "bfs_distances",
    "double_sweep_diameter",
    "exact_diameter",
    "eccentricity",
    "betweenness_centrality",
    "closeness_centrality",
    "degree_centrality",
    "UnionFind",
]
