"""Connected components of the file generation network (§4.3.2, Table 3)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.core import Graph
from repro.graph.unionfind import UnionFind


@dataclass(frozen=True)
class ConnectedComponents:
    """Component labelling plus the derived statistics the paper reports."""

    labels: np.ndarray  # dense component id per vertex, 0..k-1
    sizes: np.ndarray  # vertex count per component id

    @property
    def count(self) -> int:
        return int(self.sizes.size)

    @property
    def largest_label(self) -> int:
        return int(np.argmax(self.sizes))

    @property
    def largest_size(self) -> int:
        return int(self.sizes.max()) if self.sizes.size else 0

    def members(self, label: int) -> np.ndarray:
        """Vertex ids belonging to one component."""
        return np.flatnonzero(self.labels == label)

    def largest_members(self) -> np.ndarray:
        return self.members(self.largest_label)

    def coverage(self) -> float:
        """Fraction of all vertices inside the largest component (paper: 72%)."""
        total = int(self.labels.size)
        return self.largest_size / total if total else 0.0

    def size_distribution(self) -> dict[int, int]:
        """Component size → number of components of that size (Table 3)."""
        sizes, counts = np.unique(self.sizes, return_counts=True)
        return {int(s): int(c) for s, c in zip(sizes, counts)}


def connected_components(graph: Graph) -> ConnectedComponents:
    """Label components with union-find over the CSR edge list."""
    uf = UnionFind(graph.n)
    # iterate each undirected edge once via the CSR upper triangle
    for u in range(graph.n):
        for v in graph.neighbors(u):
            if v > u:
                uf.union(u, int(v))
    roots = uf.groups()
    _, labels = np.unique(roots, return_inverse=True)
    sizes = np.bincount(labels)
    return ConnectedComponents(labels=labels, sizes=sizes)
