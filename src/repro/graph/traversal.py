"""BFS-based traversal: distances, eccentricity, diameter.

The paper measures the largest connected component's diameter (18) and the
hop radius from the central entities (≈10, "about 55% less than the
diameter", §4.3.2).  BFS here is frontier-vectorized: each level expands the
whole frontier at once through the CSR arrays instead of vertex by vertex.
"""

from __future__ import annotations

import numpy as np

from repro.graph.core import Graph

UNREACHED = -1


def bfs_distances(graph: Graph, source: int | np.ndarray) -> np.ndarray:
    """Hop distances from ``source`` (or the nearest of several sources).

    Unreachable vertices get :data:`UNREACHED`.
    """
    dist = np.full(graph.n, UNREACHED, dtype=np.int64)
    frontier = np.atleast_1d(np.asarray(source, dtype=np.int64))
    if frontier.size and (frontier.min() < 0 or frontier.max() >= graph.n):
        raise ValueError("source vertex out of range")
    dist[frontier] = 0
    level = 0
    indptr, indices = graph.indptr, graph.indices
    while frontier.size:
        level += 1
        # gather all neighbors of the frontier in one shot
        starts = indptr[frontier]
        ends = indptr[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        nbrs = np.concatenate(
            [indices[s:e] for s, e in zip(starts, ends)]
        ) if frontier.size > 1 else indices[starts[0]:ends[0]]
        fresh = nbrs[dist[nbrs] == UNREACHED]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        dist[fresh] = level
        frontier = fresh
    return dist


def eccentricity(graph: Graph, v: int) -> int:
    """Largest finite hop distance from ``v``."""
    dist = bfs_distances(graph, v)
    reached = dist[dist >= 0]
    return int(reached.max())


def exact_diameter(graph: Graph, vertices: np.ndarray | None = None) -> int:
    """Exact diameter by all-pairs BFS over ``vertices`` (one component).

    O(n·m) — fine for the file generation network (~1.7 K vertices).
    """
    if vertices is None:
        vertices = np.arange(graph.n, dtype=np.int64)
    best = 0
    for v in vertices:
        dist = bfs_distances(graph, int(v))
        local = dist[vertices]
        local = local[local >= 0]
        if local.size:
            best = max(best, int(local.max()))
    return best


def double_sweep_diameter(graph: Graph, start: int) -> int:
    """Double-sweep lower bound on the diameter (exact on trees).

    BFS from ``start``, then BFS again from the farthest vertex found — the
    classic cheap estimator used before committing to all-pairs BFS.
    """
    dist1 = bfs_distances(graph, start)
    reach = np.flatnonzero(dist1 >= 0)
    far = reach[np.argmax(dist1[reach])]
    dist2 = bfs_distances(graph, int(far))
    reached = dist2[dist2 >= 0]
    return int(reached.max())


def radius_from(graph: Graph, sources: np.ndarray, within: np.ndarray | None = None) -> int:
    """Max hops needed to reach every vertex of ``within`` from the nearest source.

    Implements the paper's centrality claim: "from those centric entities,
    all other entities can be reached within 10 hops".
    """
    dist = bfs_distances(graph, np.asarray(sources, dtype=np.int64))
    scope = dist if within is None else dist[np.asarray(within, dtype=np.int64)]
    scope = scope[scope >= 0]
    if scope.size == 0:
        return 0
    return int(scope.max())
