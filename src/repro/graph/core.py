"""Undirected graph in compressed sparse row (CSR) form.

Vertices are dense integers ``0..n-1``; an external label table (the
analysis layer's user/project identities) maps them back.  CSR keeps the
BFS sweeps over the file generation network allocation-free and
cache-friendly, per the vectorization guidance of the scientific-Python
optimization notes.
"""

from __future__ import annotations

import numpy as np


class Graph:
    """Immutable undirected graph.

    Build with :meth:`from_edges`; self-loops are dropped and duplicate
    edges are collapsed, matching the semantics of the paper's user–project
    affiliation graph (an affiliation either exists or it does not).
    """

    def __init__(self, n_vertices: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.n = int(n_vertices)
        self.indptr = indptr
        self.indices = indices

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(cls, n_vertices: int, edges: np.ndarray) -> "Graph":
        """Build from an ``(m, 2)`` int array of undirected edges."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= n_vertices):
            raise ValueError("edge endpoint outside [0, n_vertices)")
        # drop self loops
        edges = edges[edges[:, 0] != edges[:, 1]]
        # canonicalize and deduplicate
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        if lo.size:
            key = lo * np.int64(n_vertices) + hi
            _, keep = np.unique(key, return_index=True)
            lo, hi = lo[keep], hi[keep]
        # symmetrize
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(n_vertices, indptr, dst)

    @classmethod
    def empty(cls, n_vertices: int) -> "Graph":
        return cls(
            n_vertices,
            np.zeros(n_vertices + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )

    # -- accessors -----------------------------------------------------------

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor list of one vertex (a CSR slice — a view, not a copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int | None = None) -> np.ndarray | int:
        """Degree of one vertex, or the full degree vector."""
        if v is None:
            return np.diff(self.indptr)
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def n_edges(self) -> int:
        return int(self.indices.size // 2)

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.isin(v, self.neighbors(u)).any())

    def subgraph(self, vertices: np.ndarray) -> tuple["Graph", np.ndarray]:
        """Induced subgraph.

        Returns ``(graph, vertices)`` where row ``i`` of the new graph is
        ``vertices[i]`` of the original.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        remap = np.full(self.n, -1, dtype=np.int64)
        remap[vertices] = np.arange(vertices.size)
        edges = []
        for new_u, old_u in enumerate(vertices):
            nbrs = self.neighbors(int(old_u))
            mapped = remap[nbrs]
            ok = mapped >= 0
            if ok.any():
                sel = mapped[ok]
                edges.append(
                    np.column_stack([np.full(sel.size, new_u, dtype=np.int64), sel])
                )
        if edges:
            edge_arr = np.concatenate(edges)
        else:
            edge_arr = np.empty((0, 2), dtype=np.int64)
        return Graph.from_edges(vertices.size, edge_arr), vertices

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Graph(n={self.n}, m={self.n_edges})"
