"""Disjoint-set forest (union-find) with path halving and union by size."""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Array-backed disjoint sets over ``0..n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.n_sets = n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = int(parent[x])
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.n_sets -= 1
        return True

    def union_edges(self, edges: np.ndarray) -> None:
        """Union along every edge of an ``(m, 2)`` array."""
        for a, b in np.asarray(edges, dtype=np.int64).reshape(-1, 2):
            self.union(int(a), int(b))

    def groups(self) -> np.ndarray:
        """Canonical root label per element (all elements, vectorized finish)."""
        roots = np.empty(self.parent.size, dtype=np.int64)
        for i in range(self.parent.size):
            roots[i] = self.find(i)
        return roots
