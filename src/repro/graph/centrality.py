"""Vertex centrality measures.

The paper identifies six projects and six users "positioned at the center of
the largest connected component" (§4.3.2).  We provide the standard trio:

* degree centrality — the quick screen;
* closeness centrality — vertices with the smallest average hop distance,
  the measure that best matches "from those centric entities, all other
  entities can be reached within 10 hops";
* betweenness centrality (Brandes' algorithm) — the brokerage measure that
  surfaces the liaison role the paper attributes to the OLCF staff group.
"""

from __future__ import annotations

import numpy as np

from repro.graph.core import Graph
from repro.graph.traversal import bfs_distances


def degree_centrality(graph: Graph) -> np.ndarray:
    """Degree divided by (n - 1); zeros for a singleton graph."""
    if graph.n <= 1:
        return np.zeros(graph.n, dtype=np.float64)
    return graph.degree().astype(np.float64) / (graph.n - 1)


def closeness_centrality(graph: Graph, vertices: np.ndarray | None = None) -> np.ndarray:
    """Harmonic-free classic closeness, component-scaled (Wasserman–Faust).

    For vertex v with ``r`` reachable vertices out of ``n`` total:
    ``C(v) = ((r - 1) / (n - 1)) * ((r - 1) / sum_of_distances)``, which is
    also what networkx computes with ``wf_improved=True`` — letting the test
    suite cross-check against it directly.
    """
    if vertices is None:
        vertices = np.arange(graph.n, dtype=np.int64)
    out = np.zeros(graph.n, dtype=np.float64)
    if graph.n <= 1:
        return out
    for v in vertices:
        dist = bfs_distances(graph, int(v))
        reached = dist > 0
        r = int(reached.sum()) + 1  # include v itself
        if r <= 1:
            continue
        total = float(dist[reached].sum())
        out[v] = ((r - 1) / (graph.n - 1)) * ((r - 1) / total)
    return out


def betweenness_centrality(graph: Graph, normalized: bool = True) -> np.ndarray:
    """Brandes' exact betweenness for unweighted graphs, O(n·m)."""
    n = graph.n
    bc = np.zeros(n, dtype=np.float64)
    indptr, indices = graph.indptr, graph.indices
    for s in range(n):
        # single-source shortest-path DAG
        sigma = np.zeros(n, dtype=np.float64)
        sigma[s] = 1.0
        dist = np.full(n, -1, dtype=np.int64)
        dist[s] = 0
        order: list[int] = []
        preds: list[list[int]] = [[] for _ in range(n)]
        queue = [s]
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            order.append(v)
            for w in indices[indptr[v] : indptr[v + 1]]:
                w = int(w)
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    queue.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] += sigma[v]
                    preds[w].append(v)
        # dependency accumulation, reverse BFS order
        delta = np.zeros(n, dtype=np.float64)
        for w in reversed(order):
            for v in preds[w]:
                delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != s:
                bc[w] += delta[w]
        del preds
    bc /= 2.0  # each undirected pair counted twice
    if normalized and n > 2:
        bc /= (n - 1) * (n - 2) / 2.0
    return bc
