"""Atomic, durable file writes (tmp + fsync + rename).

A crash mid-``archive()`` used to leave a half-written ``.rpq`` / ``.psv``
/ manifest that poisoned the next run.  Every writer in the data path now
goes through :func:`atomic_write`: content lands in a same-directory temp
file, is fsynced, and is atomically renamed over the destination — readers
see either the complete old file or the complete new file, never a torn
one.  The directory entry is fsynced too (best-effort: some filesystems
refuse directory fsync) so the rename itself survives power loss.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path


def fsync_dir(directory: str | Path) -> None:
    """Best-effort fsync of a directory entry (rename durability)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. O_RDONLY dirs on odd platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not all filesystems support it
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(dest: str | Path, mode: str = "wb", **open_kwargs):
    """Write ``dest`` atomically: yield a temp-file handle; commit on success.

    On any exception the temp file is removed and ``dest`` is untouched.
    On success the handle is flushed, fsynced, and renamed over ``dest``
    (``os.replace``, atomic on POSIX), then the directory entry is fsynced.
    """
    dest = Path(dest)
    tmp = dest.parent / f".{dest.name}.tmp.{os.getpid()}"
    fh = open(tmp, mode, **open_kwargs)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
    except BaseException:
        fh.close()
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - tmp already gone
            pass
        raise
    fh.close()
    os.replace(tmp, dest)
    fsync_dir(dest.parent)
