"""The reproduction pipeline.

``ReproPipeline`` mirrors the paper's Figure 4 flow:

1. **simulate** — generate the synthetic center and run the 500-day window
   (stands in for operating Spider II and collecting LustreDU snapshots);
2. **archive** (optional) — write PSV snapshots and convert them to the
   columnar format, measuring the footprint reduction the paper attributes
   to Parquet;
3. **analyze** — run the selected §4 analyses in one fused kernel pass
   over the snapshot collection (each snapshot loads once, every kernel
   runs against it — see :mod:`repro.analysis.registry`);
4. **report** — render the paper's tables and figure series as text.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import report as rpt
from repro.analysis.context import AnalysisContext
from repro.analysis.registry import AnalyzeOptions, resolve_specs, run_analyses
from repro.core.runcontrol import RunController, RunInterrupted
from repro.query.parallel import SnapshotExecutor
from repro.scan.columnar import write_columnar
from repro.scan.psv import write_psv
from repro.synth.driver import SimulationConfig, SimulationResult, run_simulation


@dataclass
class ArchiveStats:
    """PSV vs columnar footprint (the paper's 119 GB → 28 GB stage)."""

    psv_bytes: int
    columnar_bytes: int

    @property
    def reduction(self) -> float:
        """PSV/columnar footprint ratio.

        An empty columnar archive is ``inf`` (or ``nan`` for the 0/0 case),
        never ``0.0`` — an empty archive must not masquerade as "no
        reduction".
        """
        if self.columnar_bytes:
            return self.psv_bytes / self.columnar_bytes
        return float("nan") if self.psv_bytes == 0 else float("inf")


@dataclass
class PaperReport:
    """The §4 result objects, plus the rendered text report.

    A field is None when its analysis was not selected (``analyze(
    analyses=...)`` / ``repro-pipeline --analyses``); the default full run
    fills every field.
    """

    table1: list | None = field(default=None, repr=False)
    table2: dict | None = field(default=None, repr=False)
    table3: object = field(default=None, repr=False)
    fig5: object = field(default=None, repr=False)
    fig6: object = field(default=None, repr=False)
    fig7: object = field(default=None, repr=False)
    fig8: object = field(default=None, repr=False)
    fig8_depth: object = field(default=None, repr=False)
    fig10: object = field(default=None, repr=False)
    fig11: object = field(default=None, repr=False)
    fig12: object = field(default=None, repr=False)
    fig13: object = field(default=None, repr=False)
    fig14: object = field(default=None, repr=False)
    fig15: object = field(default=None, repr=False)
    fig16: object = field(default=None, repr=False)
    fig17: object = field(default=None, repr=False)
    fig18: object = field(default=None, repr=False)
    fig20: object = field(default=None, repr=False)
    text: str = ""


#: Report layout: (PaperReport field, section title, renderer), in print order.
_SECTIONS = [
    ("table1", "TABLE 1 — per-domain summary", rpt.render_table1),
    ("table2", "TABLE 2 — extension popularity", rpt.render_table2),
    ("table3", "TABLE 3 — connected components", rpt.render_table3),
    ("fig5", "FIGURE 5 — user classification", rpt.render_user_profile),
    ("fig6", "FIGURE 6 — participation", rpt.render_participation),
    ("fig7", "FIGURE 7 — files/dirs per domain", rpt.render_entry_counts),
    ("fig8_depth", "FIGURE 8a/9 — directory depth", rpt.render_depths),
    ("fig8", "FIGURE 8b — file-count CDFs", rpt.render_file_count_cdfs),
    ("fig10", "FIGURE 10 — extension trend", rpt.render_extension_trend),
    ("fig11", "FIGURE 11 — language ranking", rpt.render_language_ranking),
    ("fig12", "FIGURE 12 — languages per domain", rpt.render_domain_languages),
    ("fig13", "FIGURE 13 — weekly access patterns", rpt.render_access),
    ("fig14", "FIGURE 14 — OST stripe counts", rpt.render_stripes),
    ("fig15", "FIGURE 15 — namespace growth", rpt.render_growth),
    ("fig16", "FIGURE 16 — file age", rpt.render_ages),
    ("fig17", "FIGURE 17 — burstiness", rpt.render_burstiness),
    ("fig18", "FIGURE 18 — degree distribution", rpt.render_degree),
    ("fig20", "FIGURE 20 — collaboration", rpt.render_collaboration),
]


class ReproPipeline:
    """One-object driver for the whole reproduction."""

    def __init__(
        self,
        config: SimulationConfig | None = None,
        executor: SnapshotExecutor | None = None,
        burstiness_min_files: int = 10,
        controller: RunController | None = None,
    ) -> None:
        self.config = config if config is not None else SimulationConfig()
        self.executor = executor if executor is not None else SnapshotExecutor(1)
        self.burstiness_min_files = burstiness_min_files
        self.controller = controller
        self.simulation: SimulationResult | None = None
        self.context: AnalysisContext | None = None

    # -- stages -----------------------------------------------------------

    def simulate(self, verbose: bool = False) -> SimulationResult:
        self.simulation = run_simulation(
            self.config, verbose=verbose, controller=self.controller
        )
        self.context = AnalysisContext(
            collection=self.simulation.collection,
            population=self.simulation.population,
            executor=self.executor,
            controller=self.controller,
        )
        return self.simulation

    def archive(
        self,
        directory: str | Path,
        max_snapshots: int | None = None,
        deltas: bool = True,
        format_version: int | None = None,
        skip_existing: bool = False,
    ) -> ArchiveStats:
        """Write PSV + columnar snapshot files; returns footprint stats.

        Every file (snapshots and the ``manifest.json`` config fingerprint)
        is written atomically — tmp + fsync + rename — so a crash mid-
        archive leaves only complete files plus, at worst, one stray temp
        file, never a torn ``.rpq`` that poisons the next analysis run.

        The manifest is committed *last* and carries a monotonically
        increasing ``generation``, which makes every archive() call an
        atomic publish: a reader (``repro serve --follow``) that observes
        the new generation can trust every listed file to be complete,
        and a crash before the manifest rename leaves the previous
        generation fully intact.  ``skip_existing=True`` turns a re-run
        into an append publish — snapshots whose files already exist are
        not rewritten (atomic writes guarantee an existing file is whole),
        so publishing week N+1 costs O(one snapshot), then the manifest
        commit flips readers to the new window.

        With ``deltas=True`` (the default) each snapshot after the first
        also gets a ``{label}.rpd`` sidecar — the exact change set since
        its predecessor — enabling ``analyze_archive(incremental=True)`` to
        advance journaled kernel state in O(delta) instead of re-scanning
        the window (DESIGN.md §11).

        ``format_version`` selects the ``.rpq`` container written (see
        :data:`repro.scan.columnar.WRITE_FORMAT_VERSIONS`): v3 (the
        default) block-aligns raw numeric columns so analysis reads them
        zero-copy via mmap; v2 compresses every column, trading decode CPU
        for the smallest footprint.  Readers auto-detect either.
        """
        if self.simulation is None:
            raise RuntimeError("simulate() first")
        from repro.core.manifest import write_manifest
        from repro.scan.delta import (
            compute_delta,
            delta_config,
            sidecar_path,
            write_delta,
        )

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        psv_total = 0
        col_total = 0
        snaps = list(self.simulation.collection)
        if max_snapshots is not None:
            snaps = snaps[:max_snapshots]
        records = []
        for i, snap in enumerate(snaps):
            if self.controller is not None:
                reason = self.controller.should_stop()
                if reason is not None:
                    raise RunInterrupted(
                        f"archive interrupted ({reason}) after "
                        f"{len(records)}/{len(snaps)} snapshots",
                        reason=reason,
                        partial=records,
                        resume_hint=(
                            "every archived file is complete (atomic "
                            "writes); re-run the same command to finish — "
                            "already-written snapshots are overwritten "
                            "in place"
                        ),
                    )
            psv_path = directory / f"{snap.label}.psv"
            col_path = directory / f"{snap.label}.rpq"
            dpath = sidecar_path(directory, snap.label) if deltas and i > 0 else None
            published = (
                skip_existing
                and psv_path.exists()
                and col_path.exists()
                and (dpath is None or dpath.exists())
            )
            if published:
                psv_total += psv_path.stat().st_size
            else:
                psv_total += write_psv(
                    snap, psv_path, ost_count=self.config.ost_count
                )
                if format_version is None:
                    write_columnar(snap, col_path)
                else:
                    write_columnar(snap, col_path, format_version=format_version)
                if dpath is not None:
                    write_delta(compute_delta(snaps[i - 1], snap), dpath)
            col_total += col_path.stat().st_size
            records.append(
                {"label": snap.label, "file": col_path.name, "rows": len(snap)}
            )
        extra = {"deltas": delta_config()} if deltas else None
        write_manifest(directory, self.config, snapshots=records, extra=extra)
        return ArchiveStats(psv_bytes=psv_total, columnar_bytes=col_total)

    def analyze(
        self,
        analyses: list[str] | str | None = None,
        fused: bool = True,
    ) -> PaperReport:
        """Run the selected analyses and assemble the rendered report.

        ``analyses`` selects registry specs by name (None / ``"all"`` for
        everything; requirements like Table 1's inputs are pulled in
        automatically).  ``fused=True`` runs every selected kernel in one
        pass per snapshot; ``fused=False`` reproduces the legacy
        one-pass-per-analysis behavior (kept for ablation).
        """
        if self.context is None or self.simulation is None:
            raise RuntimeError("simulate() first")
        opts = AnalyzeOptions(
            ctx=self.context,
            scan_history=self.simulation.scanner.history,
            purge_window_days=self.config.purge_window_days,
            burstiness_min_files=self.burstiness_min_files,
        )
        values = run_analyses(opts, resolve_specs(analyses), fused=fused)
        sections = [
            (title, render(values[fld]))
            for fld, title, render in _SECTIONS
            if fld in values
        ]
        text = "\n\n".join(f"== {title} ==\n{body}" for title, body in sections)
        return PaperReport(**values, text=text)


#: Durable per-kernel state for ``analyze_archive(incremental=True)``,
#: living inside the archive directory it summarizes.
KERNEL_STATE_FILENAME = "kernel_state.bin"


def _load_delta_plan(directory, store, collection, labels, repair=False):
    """Build the run's DeltaPlan from journaled state + the sidecar chain.

    Returns a plan whose ``states``/``deltas`` drive replay when the chain
    is intact, or an empty-but-capturing plan (with a RuntimeWarning naming
    the reason) when it is not — degraded incremental runs are loud, never
    silent, mirroring the serial-downgrade convention.

    ``repair=True`` (the serving follower's mode) bounds the blast radius
    of a broken link: instead of abandoning replay for a full window
    re-scan, each missing/corrupt/mislinked sidecar is replaced by a delta
    recomputed from its two adjacent snapshots — O(suffix) snapshot loads,
    still byte-identical, still loudly warned.  The recompute is id-safe
    because the journaled table already covers every prefix path and a
    full snapshot load interns new paths in row order, exactly the order
    the sidecar's added-first contract would have used.
    """
    from repro.query.engine import DeltaPlan
    from repro.scan.delta import (
        compute_delta,
        find_delta_chain,
        read_delta,
        sidecar_path,
    )
    from repro.scan.errors import CorruptSnapshotError
    from repro.scan.paths import PathTable

    plan = DeltaPlan()

    def _fallback(reason: str) -> "DeltaPlan":
        warnings.warn(
            f"incremental analysis unavailable ({reason}) — running full "
            "maps and re-journaling kernel state",
            RuntimeWarning,
            stacklevel=3,
        )
        return DeltaPlan()

    states, stored_labels, table = store.load(labels, collection.content_ids())
    if not states:
        return plan  # first run (or discarded state): bootstrap via capture
    if collection.health.degraded:
        return _fallback("the archive window is degraded")
    if len(stored_labels) == len(labels):
        # nothing appended: replay is a no-op state readout; share the
        # journaled interning table so any full-map kernels agree on ids
        collection.paths = table
        plan.states = states
        return plan
    start = len(stored_labels)
    if not repair:
        files, reason = find_delta_chain(directory, labels, start)
        if files is None:
            return _fallback(reason)
        # validation pass against scratch tables: the shared table must stay
        # pristine unless the whole chain checks out (a bogus sidecar must
        # not poison id assignment for the full-map fallback)
        expected_prev = stored_labels[-1]
        for path, label in zip(files, labels[start:]):
            try:
                probe = read_delta(path, PathTable())
            except CorruptSnapshotError as exc:
                return _fallback(f"sidecar {path.name} is corrupt ({exc})")
            if probe.prev_label != expected_prev or probe.cur_label != label:
                return _fallback(
                    f"sidecar {path.name} links {probe.prev_label!r}->"
                    f"{probe.cur_label!r}, expected {expected_prev!r}->{label!r}"
                )
            expected_prev = probe.cur_label
        # commit: intern the chain into the journaled table, in order, and
        # make it the collection's table — replay and full loads then
        # allocate path ids against one object
        collection.paths = table
        plan.states = states
        plan.deltas = [read_delta(path, table) for path in files]
        return plan
    # repair mode: probe each link on a scratch table; a bad link becomes a
    # recompute from its two snapshots rather than sinking the whole chain
    links: list[tuple[str, object]] = []
    expected_prev = stored_labels[-1]
    for idx in range(start, len(labels)):
        label = labels[idx]
        path = sidecar_path(directory, label)
        entry = None
        if not path.exists():
            why = f"missing delta sidecar {path.name}"
        else:
            try:
                probe = read_delta(path, PathTable())
            except CorruptSnapshotError as exc:
                why = f"sidecar {path.name} is corrupt ({exc})"
            else:
                if probe.prev_label != expected_prev or probe.cur_label != label:
                    why = (
                        f"sidecar {path.name} links {probe.prev_label!r}->"
                        f"{probe.cur_label!r}, expected "
                        f"{expected_prev!r}->{label!r}"
                    )
                else:
                    entry = ("sidecar", path)
        if entry is None:
            warnings.warn(
                f"delta replay degraded ({why}) — recomputing that "
                "interval's delta from its two snapshots instead of "
                "re-scanning the window",
                RuntimeWarning,
                stacklevel=3,
            )
            entry = ("recompute", idx)
        links.append(entry)
        expected_prev = label
    collection.paths = table
    deltas = []
    try:
        for kind, ref in links:
            if kind == "sidecar":
                deltas.append(read_delta(ref, table))
            else:
                deltas.append(compute_delta(collection[ref - 1], collection[ref]))
    except CorruptSnapshotError as exc:
        # a snapshot itself is bad: the table only ever saw real paths in
        # chain order, so full maps against it remain id-consistent
        return _fallback(f"recomputing a delta failed ({exc})")
    plan.states = states
    plan.deltas = deltas
    return plan


def analyze_archive(
    directory: str | Path,
    config: SimulationConfig | None = None,
    executor: SnapshotExecutor | None = None,
    burstiness_min_files: int = 10,
    analyses: list[str] | str | None = None,
    fused: bool = True,
    on_error: str = "raise",
    verify: str | None = None,
    checkpoint: str | Path | None = None,
    allow_config_mismatch: bool = False,
    controller: RunController | None = None,
    max_task_failures: int | None = None,
    ingest_report=None,
    incremental: bool = False,
    repair_deltas: bool = False,
    snapshot_files: list | None = None,
) -> tuple[ReproPipeline, PaperReport]:
    """Out-of-core analysis: run every §4 analysis from archived snapshots.

    Loads ``.rpq`` files lazily (two resident snapshots at a time), which is
    how a multi-terabyte window — the paper's situation — stays analyzable
    on one node.  The population is regenerated deterministically from the
    config's seed; the archive's ``manifest.json`` fingerprint is validated
    against it, so a seed mismatch raises a typed
    :class:`~repro.scan.errors.ArchiveConfigError` instead of silently
    producing wrong per-domain joins (``allow_config_mismatch=True``
    downgrades that to a warning for intentional mismatches).

    Failure tolerance:

    * ``on_error`` — degradation policy for corrupt ``.rpq`` files
      (``"raise"`` / ``"skip"`` / ``"quarantine"``, see
      :class:`~repro.scan.store.DiskSnapshotCollection`); with a
      non-raise policy the fused pass runs over the surviving window and
      the collection's :class:`~repro.scan.store.ArchiveHealthReport` is
      surfaced with a loud warning;
    * ``verify`` — ``"header"`` or ``"deep"``; defaults to ``"deep"``
      whenever a non-raise policy is chosen (a skipped window must be
      *known* good, so every column block is checked up front) and
      ``"header"`` otherwise;
    * ``checkpoint`` — path of a resume journal: completed snapshots are
      checkpointed durably, a killed run resumes at the first unprocessed
      snapshot, and the journal is deleted after a successful run.
      Requires ``fused=True`` (the legacy multi-pass mode has no single
      pass to journal).

    Run control:

    * ``controller`` — a :class:`~repro.core.runcontrol.RunController`;
      its deadline/signals interrupt the kernel pass gracefully (flushed
      checkpoint, typed :class:`~repro.core.runcontrol.RunInterrupted`
      with a resume hint), and its
      :class:`~repro.core.runcontrol.MemoryBudget` caps the snapshot
      cache (``cache_bytes`` share, byte-denominated eviction) and the
      engine's dispatch waves (``wave_bytes`` share);
    * ``max_task_failures`` — per-snapshot circuit breaker: a snapshot
      whose task fails this many times across retries is quarantined into
      the :class:`~repro.scan.store.ArchiveHealthReport` instead of
      sinking the run.  Defaults to ``executor retries + 1`` whenever a
      non-raise ``on_error`` policy is chosen (degraded-mode runs keep
      going); under ``on_error="raise"`` the breaker stays disarmed.

    Incremental analysis (DESIGN.md §11):

    * ``incremental=True`` journals every delta-capable kernel's reduced
      state (plus the path-interning table) into the archive's
      ``kernel_state.bin`` after a healthy run.  The next run advances
      that state through the ``.rpd`` delta sidecars — appending snapshot
      N+1 to an analyzed archive costs O(delta) for converted kernels
      instead of an O(namespace) re-scan, with byte-identical results.
      The state is fingerprint-bound (archive config + delta layout) and
      label-prefix-checked; any mismatch, missing sidecar, or broken
      chain falls back to full maps with a RuntimeWarning, never a wrong
      answer.  Requires ``fused=True``; state is never persisted from a
      degraded or quarantine-marred run.
    * ``repair_deltas=True`` (the serving follower's mode) narrows that
      fallback: a missing/corrupt/mislinked sidecar is replaced by a
      delta recomputed from its two adjacent snapshots — a bounded
      re-analysis of just the broken suffix link, warned, byte-identical.

    Serving/publish fencing:

    * ``snapshot_files`` pins the window to an explicit list of ``.rpq``
      paths (normally the manifest's ``snapshots`` inventory) instead of
      globbing the directory.  A live reader passes the file list of the
      generation it observed, so stray files from a torn publish — data
      written, manifest commit never happened — are invisible to it.
    """
    from repro.analysis.context import AnalysisContext
    from repro.core.manifest import config_fingerprint, validate_manifest
    from repro.scan.store import DiskSnapshotCollection
    from repro.synth.population import generate_population

    config = config if config is not None else SimulationConfig()
    if checkpoint is not None and not fused:
        raise ValueError("checkpoint/resume requires the fused pass (fused=True)")
    if incremental and not fused:
        raise ValueError("incremental analysis requires the fused pass (fused=True)")
    validate_manifest(directory, config, allow_mismatch=allow_config_mismatch)
    pipeline = ReproPipeline(
        config=config, executor=executor,
        burstiness_min_files=burstiness_min_files,
    )
    pipeline.controller = controller
    if verify is None:
        verify = "deep" if on_error != "raise" else "header"
    cache_bytes = None
    if controller is not None and controller.memory_budget is not None:
        cache_bytes = controller.memory_budget.cache_bytes
    collection = DiskSnapshotCollection(
        directory, on_error=on_error, verify=verify, cache_bytes=cache_bytes,
        files=snapshot_files,
    )
    if ingest_report is not None:
        # archive built from foreign traces: one health report spans the
        # whole trace → archive → analysis chain
        ingest_report.fold_into(collection.health)
    if collection.health.degraded:
        warnings.warn(
            "analyzing a DEGRADED archive — report covers the surviving "
            f"window only:\n{collection.health.summary()}",
            RuntimeWarning,
            stacklevel=2,
        )
    population = generate_population(seed=config.seed, n_users=config.n_users)
    if max_task_failures is None and on_error != "raise":
        # degraded-mode default: one full retry cycle, then quarantine
        max_task_failures = pipeline.executor.config.retries + 1
    state_store = None
    delta_plan = None
    if incremental:
        from repro.query.journal import KernelStateStore
        from repro.scan.delta import delta_config

        state_store = KernelStateStore(
            Path(directory) / KERNEL_STATE_FILENAME,
            fingerprint={
                "config": config_fingerprint(config),
                "deltas": delta_config(),
            },
        )
        delta_plan = _load_delta_plan(
            directory, state_store, collection, collection.labels,
            repair=repair_deltas,
        )
    pipeline.context = AnalysisContext(
        collection=collection,  # type: ignore[arg-type]
        population=population,
        executor=pipeline.executor,
        checkpoint=Path(checkpoint) if checkpoint is not None else None,
        checkpoint_meta={"config": config_fingerprint(config)},
        controller=controller,
        max_task_failures=max_task_failures,
        delta_plan=delta_plan,
    )

    # a minimal stand-in simulation record (no scanner history: Figure 15's
    # optional snapshot-size series is simply absent in archive mode)
    from repro.scan.lustredu import LustreDuScanner

    pipeline.simulation = SimulationResult(
        config=config,
        population=population,
        fs=None,  # type: ignore[arg-type]
        scanner=LustreDuScanner(collection.paths),
        collection=collection,  # type: ignore[arg-type]
        purge_reports=[],
        week_stats=[],
    )
    report = pipeline.analyze(analyses=analyses, fused=fused)
    if checkpoint is not None:
        # the run completed: the journal has served its purpose
        Path(checkpoint).unlink(missing_ok=True)
    if state_store is not None and delta_plan is not None:
        healthy = (
            not collection.health.degraded
            and pipeline.executor.stats.quarantined_snapshots == 0
        )
        if healthy and delta_plan.updated_states:
            if delta_plan.fallbacks or not delta_plan.replayed:
                # a fused pass ran: under a parallel executor the snapshots
                # were loaded (and interned) worker-side, so replay the
                # interning parent-side in index order before journaling the
                # table — ids must match the states' path ids exactly
                for i in range(len(collection)):
                    collection.warm_paths(i)
            state_store.save(
                delta_plan.updated_states, collection.labels,
                collection.paths, collection.content_ids(),
            )
        elif not healthy:
            warnings.warn(
                "kernel state not journaled: the run was degraded or "
                "quarantined snapshots — the next incremental run will "
                "re-analyze from the last healthy state",
                RuntimeWarning,
                stacklevel=2,
            )
    return pipeline, report


def run_paper_report(
    config: SimulationConfig | None = None,
    executor: SnapshotExecutor | None = None,
    burstiness_min_files: int = 10,
    verbose: bool = False,
) -> tuple[ReproPipeline, PaperReport]:
    """Convenience: simulate + analyze in one call."""
    pipeline = ReproPipeline(
        config=config, executor=executor, burstiness_min_files=burstiness_min_files
    )
    pipeline.simulate(verbose=verbose)
    return pipeline, pipeline.analyze()
