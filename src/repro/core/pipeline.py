"""The reproduction pipeline.

``ReproPipeline`` mirrors the paper's Figure 4 flow:

1. **simulate** — generate the synthetic center and run the 500-day window
   (stands in for operating Spider II and collecting LustreDU snapshots);
2. **archive** (optional) — write PSV snapshots and convert them to the
   columnar format, measuring the footprint reduction the paper attributes
   to Parquet;
3. **analyze** — run every §4 analysis over the snapshot collection;
4. **report** — render the paper's tables and figure series as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import report as rpt
from repro.analysis.access import access_patterns, file_ages
from repro.analysis.burstiness import burstiness
from repro.analysis.collaboration import collaboration
from repro.analysis.context import AnalysisContext
from repro.analysis.depth import directory_depths
from repro.analysis.extensions import extension_trend, extensions_by_domain
from repro.analysis.files import entries_by_domain, file_count_cdfs
from repro.analysis.growth import growth_series
from repro.analysis.languages import language_ranking, languages_by_domain
from repro.analysis.network import (
    build_network,
    component_analysis,
    degree_distribution,
)
from repro.analysis.ost import stripe_stats
from repro.analysis.table1 import build_table1
from repro.analysis.users import participation, user_profile
from repro.query.parallel import SnapshotExecutor
from repro.scan.columnar import write_columnar
from repro.scan.psv import write_psv
from repro.synth.driver import SimulationConfig, SimulationResult, run_simulation


@dataclass
class ArchiveStats:
    """PSV vs columnar footprint (the paper's 119 GB → 28 GB stage)."""

    psv_bytes: int
    columnar_bytes: int

    @property
    def reduction(self) -> float:
        return self.psv_bytes / self.columnar_bytes if self.columnar_bytes else 0.0


@dataclass
class PaperReport:
    """Every §4 result object, plus the rendered text report."""

    table1: list = field(repr=False)
    table2: dict = field(repr=False)
    table3: object = field(repr=False)
    fig5: object = field(repr=False)
    fig6: object = field(repr=False)
    fig7: object = field(repr=False)
    fig8: object = field(repr=False)
    fig8_depth: object = field(repr=False)
    fig10: object = field(repr=False)
    fig11: object = field(repr=False)
    fig12: object = field(repr=False)
    fig13: object = field(repr=False)
    fig14: object = field(repr=False)
    fig15: object = field(repr=False)
    fig16: object = field(repr=False)
    fig17: object = field(repr=False)
    fig18: object = field(repr=False)
    fig20: object = field(repr=False)
    text: str = ""


class ReproPipeline:
    """One-object driver for the whole reproduction."""

    def __init__(
        self,
        config: SimulationConfig | None = None,
        executor: SnapshotExecutor | None = None,
        burstiness_min_files: int = 10,
    ) -> None:
        self.config = config if config is not None else SimulationConfig()
        self.executor = executor if executor is not None else SnapshotExecutor(1)
        self.burstiness_min_files = burstiness_min_files
        self.simulation: SimulationResult | None = None
        self.context: AnalysisContext | None = None

    # -- stages -----------------------------------------------------------

    def simulate(self, verbose: bool = False) -> SimulationResult:
        self.simulation = run_simulation(self.config, verbose=verbose)
        self.context = AnalysisContext(
            collection=self.simulation.collection,
            population=self.simulation.population,
            executor=self.executor,
        )
        return self.simulation

    def archive(self, directory: str | Path, max_snapshots: int | None = None) -> ArchiveStats:
        """Write PSV + columnar snapshot files; returns footprint stats."""
        if self.simulation is None:
            raise RuntimeError("simulate() first")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        psv_total = 0
        col_total = 0
        snaps = list(self.simulation.collection)
        if max_snapshots is not None:
            snaps = snaps[:max_snapshots]
        for snap in snaps:
            psv_path = directory / f"{snap.label}.psv"
            psv_total += write_psv(snap, psv_path, ost_count=self.config.ost_count)
            col_path = directory / f"{snap.label}.rpq"
            write_columnar(snap, col_path)
            col_total += col_path.stat().st_size
        return ArchiveStats(psv_bytes=psv_total, columnar_bytes=col_total)

    def analyze(self) -> PaperReport:
        """Run every analysis and assemble the rendered report."""
        if self.context is None or self.simulation is None:
            raise RuntimeError("simulate() first")
        ctx = self.context
        table1 = build_table1(ctx, burstiness_min_files=self.burstiness_min_files)
        table2 = extensions_by_domain(ctx)
        network = build_network(ctx)
        table3 = component_analysis(ctx, network)
        fig5 = user_profile(ctx)
        fig6 = participation(ctx)
        fig7 = entries_by_domain(ctx)
        fig8 = file_count_cdfs(ctx)
        fig8_depth = directory_depths(ctx)
        fig10 = extension_trend(ctx)
        fig11 = language_ranking(ctx)
        fig12 = languages_by_domain(ctx)
        fig13 = access_patterns(ctx)
        fig14 = stripe_stats(ctx)
        fig15 = growth_series(ctx, self.simulation.scanner.history)
        fig16 = file_ages(ctx, purge_window_days=self.config.purge_window_days)
        fig17 = burstiness(ctx, min_files=self.burstiness_min_files)
        fig18 = degree_distribution(network)
        fig20 = collaboration(ctx)

        sections = [
            ("TABLE 1 — per-domain summary", rpt.render_table1(table1)),
            ("TABLE 2 — extension popularity", rpt.render_table2(table2)),
            ("TABLE 3 — connected components", rpt.render_table3(table3)),
            ("FIGURE 5 — user classification", rpt.render_user_profile(fig5)),
            ("FIGURE 6 — participation", rpt.render_participation(fig6)),
            ("FIGURE 7 — files/dirs per domain", rpt.render_entry_counts(fig7)),
            ("FIGURE 8a/9 — directory depth", rpt.render_depths(fig8_depth)),
            ("FIGURE 8b — file-count CDFs", rpt.render_file_count_cdfs(fig8)),
            ("FIGURE 10 — extension trend", rpt.render_extension_trend(fig10)),
            ("FIGURE 11 — language ranking", rpt.render_language_ranking(fig11)),
            ("FIGURE 12 — languages per domain", rpt.render_domain_languages(fig12)),
            ("FIGURE 13 — weekly access patterns", rpt.render_access(fig13)),
            ("FIGURE 14 — OST stripe counts", rpt.render_stripes(fig14)),
            ("FIGURE 15 — namespace growth", rpt.render_growth(fig15)),
            ("FIGURE 16 — file age", rpt.render_ages(fig16)),
            ("FIGURE 17 — burstiness", rpt.render_burstiness(fig17)),
            ("FIGURE 18 — degree distribution", rpt.render_degree(fig18)),
            ("FIGURE 20 — collaboration", rpt.render_collaboration(fig20)),
        ]
        text = "\n\n".join(f"== {title} ==\n{body}" for title, body in sections)
        return PaperReport(
            table1=table1,
            table2=table2,
            table3=table3,
            fig5=fig5,
            fig6=fig6,
            fig7=fig7,
            fig8=fig8,
            fig8_depth=fig8_depth,
            fig10=fig10,
            fig11=fig11,
            fig12=fig12,
            fig13=fig13,
            fig14=fig14,
            fig15=fig15,
            fig16=fig16,
            fig17=fig17,
            fig18=fig18,
            fig20=fig20,
            text=text,
        )


def analyze_archive(
    directory: str | Path,
    config: SimulationConfig | None = None,
    executor: SnapshotExecutor | None = None,
    burstiness_min_files: int = 10,
) -> tuple[ReproPipeline, PaperReport]:
    """Out-of-core analysis: run every §4 analysis from archived snapshots.

    Loads ``.rpq`` files lazily (two resident snapshots at a time), which is
    how a multi-terabyte window — the paper's situation — stays analyzable
    on one node.  The population is regenerated deterministically from the
    config's seed (it must match the seed the archive was produced with; at
    a real center this is where the accounts database plugs in instead).
    """
    from repro.analysis.context import AnalysisContext
    from repro.scan.store import DiskSnapshotCollection
    from repro.synth.population import generate_population

    config = config if config is not None else SimulationConfig()
    pipeline = ReproPipeline(
        config=config, executor=executor,
        burstiness_min_files=burstiness_min_files,
    )
    collection = DiskSnapshotCollection(directory)
    population = generate_population(seed=config.seed, n_users=config.n_users)
    pipeline.context = AnalysisContext(
        collection=collection,  # type: ignore[arg-type]
        population=population,
        executor=pipeline.executor,
    )

    # a minimal stand-in simulation record (no scanner history: Figure 15's
    # optional snapshot-size series is simply absent in archive mode)
    from repro.scan.lustredu import LustreDuScanner

    pipeline.simulation = SimulationResult(
        config=config,
        population=population,
        fs=None,  # type: ignore[arg-type]
        scanner=LustreDuScanner(collection.paths),
        collection=collection,  # type: ignore[arg-type]
        purge_reports=[],
        week_stats=[],
    )
    return pipeline, pipeline.analyze()


def run_paper_report(
    config: SimulationConfig | None = None,
    executor: SnapshotExecutor | None = None,
    burstiness_min_files: int = 10,
    verbose: bool = False,
) -> tuple[ReproPipeline, PaperReport]:
    """Convenience: simulate + analyze in one call."""
    pipeline = ReproPipeline(
        config=config, executor=executor, burstiness_min_files=burstiness_min_files
    )
    pipeline.simulate(verbose=verbose)
    return pipeline, pipeline.analyze()
