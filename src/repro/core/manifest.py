"""Archive manifest: a config fingerprint written at ``archive()`` time.

``analyze_archive()`` regenerates the population deterministically from the
caller's :class:`~repro.synth.driver.SimulationConfig`; if that seed (or
``n_users``, or the purge window an age analysis is judged against) differs
from the one that produced the archive, every per-domain join is silently
wrong.  The manifest turns that silent wrong-results mode into a typed
:class:`~repro.scan.errors.ArchiveConfigError` — with an explicit override
for intentional mismatches (e.g. re-judging ages against a different purge
window on purpose).

The manifest is JSON, written atomically next to the snapshots.  Archives
produced before manifests existed simply have none; validation then warns
and proceeds (there is nothing to validate against).
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path

from repro.core.durable import atomic_write
from repro.scan.errors import ArchiveConfigError

MANIFEST_NAME = "manifest.json"
FORMAT = "repro-archive/1"

#: Config fields whose mismatch makes analysis results silently wrong.
FINGERPRINT_FIELDS = ("seed", "n_users", "purge_window_days")


def config_fingerprint(config) -> dict:
    """The identity-defining subset of a SimulationConfig, as plain JSON."""
    return {name: getattr(config, name) for name in FINGERPRINT_FIELDS}


def manifest_generation(directory: str | Path) -> int:
    """The archive's publish generation: 0 when absent or unreadable.

    Readers poll this to learn that a writer committed a new snapshot set;
    because the manifest is the *last* thing a publish writes (via
    ``atomic_write``), a generation bump guarantees every file it lists is
    complete on disk.  Pre-generation manifests and torn/missing manifests
    both read as 0 — "nothing published yet" — so followers never act on a
    half-published archive.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        with open(path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        return int(manifest.get("generation", 0))
    except (OSError, ValueError, TypeError, AttributeError):
        return 0


def write_manifest(
    directory: str | Path,
    config,
    snapshots: list[dict] | None = None,
    extra: dict | None = None,
    generation: int | None = None,
) -> Path:
    """Write (atomically) the archive manifest; returns its path.

    ``snapshots`` is an optional list of ``{"label", "file", "rows"}``
    records for operator-facing inventory; the fingerprint is what
    validation consumes.  ``extra`` merges additional provenance sections
    into the manifest (e.g. the ``ingest`` summary for archives built from
    foreign traces); it may not shadow the reserved keys.

    Every manifest carries a monotonically increasing ``generation``.  By
    default it is the prior manifest's generation + 1, so each publish —
    data and sidecars fsynced first, manifest committed last — is fenced:
    a reader that observes generation N can trust every file the manifest
    lists.  Pass ``generation`` explicitly to pin it (tests, replication).
    """
    directory = Path(directory)
    if generation is None:
        generation = manifest_generation(directory) + 1
    manifest = {
        "format": FORMAT,
        "config": config_fingerprint(config),
        "scale": config.scale,
        "weeks": config.weeks,
        "generation": int(generation),
        "snapshots": snapshots or [],
        "created_unix": int(time.time()),
    }
    if extra:
        clash = set(extra) & set(manifest)
        if clash:
            raise ValueError(
                f"manifest extra section(s) {sorted(clash)} shadow reserved keys"
            )
        manifest.update(extra)
    path = directory / MANIFEST_NAME
    with atomic_write(path, "w") as fh:
        json.dump(manifest, fh, indent=2)
        fh.write("\n")
    return path


def load_manifest(directory: str | Path) -> dict | None:
    """The parsed manifest, or None when the archive predates manifests."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        with open(path, encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ArchiveConfigError(
            path, {"manifest": (f"unreadable ({exc})", "valid JSON")}
        ) from exc
    if not isinstance(manifest, dict) or "config" not in manifest:
        raise ArchiveConfigError(
            path, {"manifest": ("missing 'config' fingerprint", "present")}
        )
    return manifest


def validate_manifest(
    directory: str | Path, config, allow_mismatch: bool = False
) -> dict | None:
    """Check the caller's config against the archive's fingerprint.

    Raises :class:`ArchiveConfigError` on mismatch unless
    ``allow_mismatch`` (then a RuntimeWarning is emitted instead).  A
    missing manifest warns and returns None — old archives keep working,
    but without protection.
    """
    manifest = load_manifest(directory)
    if manifest is None:
        warnings.warn(
            f"archive {directory} has no {MANIFEST_NAME}: cannot verify the "
            "config fingerprint (seed/n_users/purge window) — results are "
            "wrong if they differ from the producing run",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    recorded = manifest["config"]
    requested = config_fingerprint(config)
    mismatches = {
        key: (recorded.get(key), requested[key])
        for key in FINGERPRINT_FIELDS
        if recorded.get(key) != requested[key]
    }
    if mismatches:
        err = ArchiveConfigError(Path(directory) / MANIFEST_NAME, mismatches)
        if not allow_mismatch:
            raise err
        warnings.warn(str(err), RuntimeWarning, stacklevel=3)
    return manifest
