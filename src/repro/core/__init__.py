"""End-to-end pipeline: simulate → scan → convert → analyze → report.

This is the reproduction's "primary contribution" layer — the equivalent of
the paper's Figure 4 data path plus the full §4 analysis pass, as one
programmable object and one CLI (``repro-pipeline``).

The convenience re-exports resolve lazily (PEP 562): leaf modules such as
:mod:`repro.core.durable` are imported by the scan layer, which the
pipeline itself builds on — an eager ``from .pipeline import ...`` here
would make that a circular import.
"""

__all__ = ["PaperReport", "ReproPipeline", "run_paper_report"]


def __getattr__(name):
    if name in __all__:
        from repro.core import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
