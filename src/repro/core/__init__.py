"""End-to-end pipeline: simulate → scan → convert → analyze → report.

This is the reproduction's "primary contribution" layer — the equivalent of
the paper's Figure 4 data path plus the full §4 analysis pass, as one
programmable object and one CLI (``repro-pipeline``).
"""

from repro.core.pipeline import PaperReport, ReproPipeline, run_paper_report

__all__ = ["PaperReport", "ReproPipeline", "run_paper_report"]
