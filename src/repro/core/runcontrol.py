"""Run-level control plane: deadlines, cancellation, and memory budgets.

The pipeline is a long-running metadata job — 72 snapshots, 500 simulated
days, multi-GB archives at scale — and production metadata engines treat
interruptibility and resource ceilings as first-class (Robinhood's policy
runs, Lustre changelog consumers).  This module is the layer that ties the
per-task retries/watchdogs (engine) and the resumable kernel journal
together into *run-level* behavior:

* :class:`CancelToken` — a cooperative cancellation flag.  Signal handlers
  (and tests) set it; every long-running layer polls it at its natural
  boundary (between weeks, between snapshots, between dispatch waves) and
  stops *gracefully* — checkpoint flushed, workers drained, typed error.
* :class:`RunController` — carries a wall-clock deadline, the token, a
  byte-denominated :class:`MemoryBudget`, and the grace period granted to
  in-flight workers after a stop is requested.  Library callers construct
  one explicitly and pass it down; only the CLI installs signal handlers
  (:meth:`RunController.install_signal_handlers`), and only around
  ``main()`` — a library must never hijack its host's signal disposition.
* :class:`MemoryBudget` — one byte ceiling for the run, split between the
  snapshot cache (:class:`~repro.scan.store.DiskSnapshotCollection`
  evicts by bytes against ``cache_bytes``) and in-flight dispatch waves
  (the engine caps concurrent workers against ``wave_bytes``).
* :class:`RunInterrupted` — the typed stop.  Carries the reason, the
  partial result accumulated so far, the run's
  :class:`~repro.query.engine.ExecutionStats`, and a ``resume_hint``
  naming the exact ``--checkpoint`` invocation that resumes the run
  byte-identically.

Every check is cooperative: nothing here preempts a running task.  The
engine's bounded grace period (then pool termination) is what turns a
stuck worker into a stop anyway.
"""

from __future__ import annotations

import re
import signal
import threading
import time
from collections.abc import Callable
from contextlib import contextmanager

__all__ = [
    "CancelToken",
    "MemoryBudget",
    "RunController",
    "RunInterrupted",
    "parse_bytes",
]

#: Suffix multipliers accepted by :func:`parse_bytes` (binary, like ulimit).
_UNITS = {"": 1, "k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}

_BYTES_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([kmgt]?)i?b?\s*$", re.IGNORECASE)


def parse_bytes(value: int | float | str) -> int:
    """``"512M"`` / ``"2GiB"`` / ``"1048576"`` / ``1048576`` → bytes.

    Suffixes are binary (``K`` = 1024); a bare number is bytes.  Raises a
    typed ``ValueError`` on anything else (including negatives) so a CLI
    typo fails loudly instead of silently meaning "unlimited".
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        result = int(value)
        if result <= 0:
            raise ValueError(f"byte size must be positive, got {value!r}")
        return result
    match = _BYTES_RE.match(str(value))
    if not match:
        raise ValueError(
            f"unparsable byte size {value!r} (want e.g. 512M, 2G, or bytes)"
        )
    number, unit = match.groups()
    result = int(float(number) * _UNITS[unit.lower()])
    if result <= 0:
        raise ValueError(f"byte size must be positive, got {value!r}")
    return result


class CancelToken:
    """Cooperative cancellation flag; the first reason sticks.

    Thread- and signal-safe by construction: ``cancel()`` only ever writes
    one attribute, and observers only read it.

    A token may be *linked* to a parent: cancelling the parent cancels
    every linked child (the serving layer's drain path — one root cancel
    stops all in-flight request controllers), while cancelling a child
    never touches the parent or its siblings.
    """

    __slots__ = ("_reason", "_parent")

    def __init__(self, parent: "CancelToken | None" = None) -> None:
        self._reason: str | None = None
        self._parent = parent

    def cancel(self, reason: str = "cancelled") -> None:
        """Request a stop.  Later calls keep the original reason."""
        if self._reason is None:
            self._reason = str(reason)

    @property
    def cancelled(self) -> bool:
        if self._reason is not None:
            return True
        return self._parent is not None and self._parent.cancelled

    @property
    def reason(self) -> str | None:
        if self._reason is not None:
            return self._reason
        return self._parent.reason if self._parent is not None else None


class MemoryBudget:
    """One byte-denominated ceiling for a run's working set.

    The budget is split between the two byte consumers a run has:

    * ``cache_bytes`` (half) — ceiling for the disk collection's snapshot
      LRU cache, enforced by byte-denominated eviction;
    * ``wave_bytes`` (the rest) — ceiling for in-flight dispatch waves;
      the engine caps concurrent workers so the decoded snapshots resident
      in workers at any instant fit inside it.

    The split is a policy default, not a hard partition — a single
    snapshot larger than a share is still loaded (the run degrades to a
    one-snapshot cache / serial waves rather than refusing to run).
    """

    __slots__ = ("limit_bytes",)

    def __init__(self, limit: int | float | str) -> None:
        self.limit_bytes = parse_bytes(limit)

    @property
    def cache_bytes(self) -> int:
        """Snapshot-cache share of the budget."""
        return self.limit_bytes // 2

    @property
    def wave_bytes(self) -> int:
        """Dispatch-wave (in-flight workers) share of the budget."""
        return self.limit_bytes - self.cache_bytes

    def __repr__(self) -> str:
        return f"MemoryBudget({self.limit_bytes} B)"


class RunInterrupted(RuntimeError):
    """A run was stopped gracefully (deadline, signal, or cancellation).

    Attributes
    ----------
    reason:
        Why the run stopped (``"received SIGTERM"``, ``"deadline
        expired..."``).
    partial:
        Whatever partial result the interrupted layer could hand back
        (completed week stats mid-simulation, archived snapshot records
        mid-archive, None mid-analysis — the checkpoint journal holds the
        analysis partials durably).
    resume_hint:
        Human-readable instruction for resuming — when a checkpoint
        journal was active, the exact ``--checkpoint`` invocation that
        resumes byte-identically.
    stats:
        The :class:`~repro.query.engine.ExecutionStats` accumulated up to
        the stop (engine-level interrupts only).
    """

    def __init__(
        self,
        message: str,
        reason: str = "",
        partial: object = None,
        resume_hint: str | None = None,
        stats: object = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.partial = partial
        self.resume_hint = resume_hint
        self.stats = stats

    def __str__(self) -> str:
        base = super().__str__()
        if self.resume_hint:
            return f"{base}\nresume: {self.resume_hint}"
        return base


class RunController:
    """Deadline + cancellation + memory budget for one run.

    Parameters
    ----------
    max_seconds:
        Wall-clock budget for the run; ``None`` means no deadline.  The
        deadline starts at construction (build the controller right before
        the run).
    memory_budget:
        A :class:`MemoryBudget`, or anything :func:`parse_bytes` accepts.
    grace_seconds:
        How long in-flight workers may drain after a stop is requested
        before the engine terminates the pool.
    clock:
        Monotonic time source; injectable so deadline tests are
        deterministic instead of sleep-based.
    """

    def __init__(
        self,
        max_seconds: float | None = None,
        memory_budget: MemoryBudget | int | str | None = None,
        grace_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_seconds is not None and max_seconds < 0:
            raise ValueError("max_seconds must be >= 0")
        if grace_seconds < 0:
            raise ValueError("grace_seconds must be >= 0")
        if memory_budget is not None and not isinstance(memory_budget, MemoryBudget):
            memory_budget = MemoryBudget(memory_budget)
        self.token = CancelToken()
        self.memory_budget = memory_budget
        self.grace_seconds = float(grace_seconds)
        self.max_seconds = max_seconds
        self._clock = clock
        self.deadline: float | None = (
            None if max_seconds is None else clock() + float(max_seconds)
        )

    # -- observation ---------------------------------------------------------

    def remaining(self) -> float | None:
        """Seconds left on the deadline (``None`` when no deadline)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self._clock())

    def should_stop(self) -> str | None:
        """The stop reason, or ``None`` to keep running.

        This is *the* cancellation point: every long-running layer calls
        it at its natural boundary.  Cancellation (signal) outranks the
        deadline so the reported reason matches what actually happened
        first.
        """
        if self.token.cancelled:
            return self.token.reason
        if self.deadline is not None and self._clock() >= self.deadline:
            return f"deadline expired (--max-seconds {self.max_seconds:g})"
        return None

    def cancellation_point(
        self,
        context: str,
        partial: object = None,
        resume_hint: str | None = None,
    ) -> None:
        """Raise :class:`RunInterrupted` here if a stop was requested.

        Sugar over :meth:`should_stop` for layers that have nothing to
        drain at their boundary (the ingest path checks between record
        chunks and between source files): ``context`` names where the run
        stopped, ``partial``/``resume_hint`` ride on the raised error.
        """
        reason = self.should_stop()
        if reason is not None:
            raise RunInterrupted(
                f"{context}: stopping ({reason})",
                reason=reason,
                partial=partial,
                resume_hint=resume_hint,
            )

    # -- derived controllers -------------------------------------------------

    def child(
        self,
        max_seconds: float | None = None,
        grace_seconds: float | None = None,
    ) -> "RunController":
        """A nested controller whose budget can only shrink the parent's.

        The child's deadline is ``min(parent remaining, max_seconds)`` —
        a request-scoped deadline can never outlive the run it belongs to
        — and its token is linked to the parent's, so cancelling the
        parent (SIGTERM drain) cancels every outstanding child while a
        child's own cancel (one request's deadline) stays local.  The
        memory budget and clock are shared; ``grace_seconds`` defaults to
        the parent's.  This is how the serving layer derives per-request
        deadlines from the run-level control plane.
        """
        remaining = self.remaining()
        if max_seconds is None:
            effective = remaining
        elif remaining is None:
            effective = float(max_seconds)
        else:
            effective = min(float(max_seconds), remaining)
        child = RunController(
            max_seconds=effective,
            memory_budget=self.memory_budget,
            grace_seconds=(
                self.grace_seconds if grace_seconds is None else grace_seconds
            ),
            clock=self._clock,
        )
        child.token = CancelToken(parent=self.token)
        return child

    # -- signal handling (process entry points only) -------------------------

    @contextmanager
    def install_signal_handlers(
        self, signals: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)
    ):
        """Route SIGINT/SIGTERM into :meth:`CancelToken.cancel` — CLI only.

        First signal: request a graceful stop.  Second SIGINT: raise
        ``KeyboardInterrupt`` (the user really means it).  Previous
        handlers are restored on exit.  Library callers must NOT use this
        — they pass a controller and keep their host's signal disposition;
        outside the main thread this is a documented no-op (CPython only
        allows signal handlers in the main thread).
        """
        if threading.current_thread() is not threading.main_thread():
            yield self
            return

        def _handler(signum: int, frame) -> None:
            name = signal.Signals(signum).name
            if self.token.cancelled and signum == signal.SIGINT:
                raise KeyboardInterrupt
            self.token.cancel(f"received {name}")

        previous = {}
        try:
            for signum in signals:
                previous[signum] = signal.signal(signum, _handler)
            yield self
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)
