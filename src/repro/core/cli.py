"""``repro-pipeline`` / ``repro`` command-line entry point.

Runs the full reproduction at a chosen scale and prints the paper-style
report; optionally archives PSV/columnar snapshot files.  The ``ingest``
verb (``repro ingest TRACE... --out DIR``) instead imports foreign
LustreDU/PSV trace dumps into an analyzable archive through the hardened
:mod:`repro.ingest` path.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.pipeline import ReproPipeline
from repro.core.runcontrol import RunController, RunInterrupted
from repro.query.parallel import SnapshotExecutor
from repro.synth.driver import SimulationConfig

#: Exit codes for interrupted runs: 130 = stopped by signal (128+SIGINT,
#: shell convention), 124 = deadline expired (same as timeout(1)).
EXIT_SIGNAL = 130
EXIT_DEADLINE = 124


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pipeline",
        description=(
            "Reproduce 'Scientific User Behavior and Data-Sharing Trends in "
            "a Petascale File System' (SC'17) on a synthetic OLCF."
        ),
    )
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument(
        "--scale",
        type=float,
        default=2.5e-5,
        help="fraction of the paper's per-domain entry counts to simulate",
    )
    parser.add_argument("--weeks", type=int, default=72)
    parser.add_argument(
        "--purge-window", type=int, default=90, help="purge window in days"
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="use a process pool for per-snapshot analyses",
    )
    parser.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver", "serial"),
        default=None,
        help="process start method for --parallel (default: platform "
        "default; REPRO_START_METHOD overrides both)",
    )
    parser.add_argument(
        "--archive-dir",
        default=None,
        help="also write PSV + columnar snapshot files here",
    )
    parser.add_argument(
        "--format-version",
        type=int,
        choices=(2, 3),
        default=None,
        help="on-disk .rpq container written by --archive-dir: 3 (default) "
        "block-aligns raw numeric columns for zero-copy mmap reads, 2 "
        "compresses every column for the smallest footprint; readers "
        "auto-detect either, so mixed-version archives analyze fine",
    )
    parser.add_argument(
        "--from-archive",
        default=None,
        help="skip simulation: analyze archived .rpq snapshots out-of-core "
        "(the config fingerprint is validated against the archive's "
        "manifest.json)",
    )
    parser.add_argument(
        "--on-error",
        choices=("raise", "skip", "quarantine"),
        default="raise",
        help="degradation policy for corrupt .rpq files under "
        "--from-archive: raise a typed error (default), skip them, or "
        "move them to the archive's quarantine/ subdirectory; non-raise "
        "policies deep-verify every file and analyze the surviving window",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="journal completed snapshots here during --from-archive "
        "analysis; a killed run re-invoked with the same path resumes at "
        "the first unprocessed snapshot (deleted after a successful run)",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="with --from-archive: journal per-kernel reduced state in the "
        "archive and advance it through the .rpd delta sidecars on the "
        "next run, so appending one snapshot costs O(delta) instead of a "
        "full re-scan (falls back to full maps, with a warning, whenever "
        "the state or sidecar chain is unusable)",
    )
    parser.add_argument(
        "--no-deltas",
        action="store_true",
        help="with --archive-dir: skip writing the per-interval .rpd delta "
        "sidecars next to the .rpq snapshots",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget for the whole run; on expiry the pipeline "
        "stops gracefully at the next boundary (week / snapshot / dispatch "
        "wave), flushes any --checkpoint journal, prints the resume hint, "
        f"and exits {EXIT_DEADLINE}",
    )
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES",
        help="byte ceiling for the run's working set (accepts 512M / 2G / "
        "plain bytes); half caps the snapshot cache (byte-denominated "
        "eviction), the rest caps in-flight dispatch waves",
    )
    parser.add_argument(
        "--max-task-failures",
        type=int,
        default=None,
        metavar="N",
        help="per-snapshot circuit breaker: a snapshot whose analysis task "
        "fails N times across retries is quarantined into the archive "
        "health report instead of failing the run (requires a non-raise "
        "--on-error policy; defaults to retries+1 under skip/quarantine)",
    )
    parser.add_argument(
        "--grace-seconds",
        type=float,
        default=5.0,
        metavar="S",
        help="how long in-flight workers may drain after a stop is "
        "requested before the pool is terminated (default: 5)",
    )
    parser.add_argument(
        "--allow-config-mismatch",
        action="store_true",
        help="downgrade an archive-manifest config mismatch (seed, "
        "n_users, purge window) from a hard error to a warning",
    )
    parser.add_argument(
        "--export-dir",
        default=None,
        help="write plotting-ready CSVs for every figure series here",
    )
    parser.add_argument(
        "--analyses",
        default="all",
        help="comma-separated analysis names to run (default: all); "
        "requirements are pulled in automatically.  Available: "
        "users, participation, census, cdfs, depth, extensions, "
        "ext_trend, languages, access, ost, growth, ages, burstiness, "
        "network, collaboration, table1",
    )
    parser.add_argument(
        "--legacy-passes",
        action="store_true",
        help="run one snapshot pass per analysis instead of the fused "
        "kernel pass (ablation / debugging)",
    )
    parser.add_argument(
        "--engine-stats",
        action="store_true",
        help="print the execution engine's lifetime stats (per-kernel "
        "timings, snapshot loads) to stderr after the report",
    )
    parser.add_argument(
        "--burstiness-min-files",
        type=int,
        default=10,
        help="per-(project,week) qualification threshold (paper: 100 at full scale)",
    )
    parser.add_argument(
        "--scorecard",
        action="store_true",
        help="append the 12-observation reproduction scorecard to the report",
    )
    parser.add_argument("--verbose", action="store_true")
    return parser


def build_ingest_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro ingest",
        description=(
            "Ingest foreign LustreDU/PSV trace dumps (plain or gzip, any "
            "size, untrusted content) into a validated .rpq archive "
            "directory that analyze/--from-archive consumes unchanged."
        ),
    )
    parser.add_argument(
        "sources",
        nargs="+",
        metavar="TRACE",
        help="trace files (.psv/.psv.gz/.txt/.txt.gz) or one directory "
        "containing them; one snapshot is produced per file, labeled and "
        "date-stamped from its name (YYYYMMDD prefix) when possible",
    )
    parser.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="archive directory to produce (.rpq files + manifest.json "
        "+ .bad quarantine sidecars)",
    )
    parser.add_argument(
        "--on-error",
        choices=("raise", "skip", "quarantine"),
        default="quarantine",
        help="per-record degradation policy: raise stops at the first bad "
        "record, skip drops-and-counts, quarantine (default) also writes "
        "each bad line with a machine-readable reason to a .bad sidecar "
        "next to the snapshot; source files are never modified or moved",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="journal completed source files here; a killed ingest "
        "re-invoked with the same path skips them and converges on "
        "byte-identical outputs (deleted after a successful run)",
    )
    parser.add_argument(
        "--no-deltas",
        action="store_true",
        help="skip the post-pass that chains .rpd delta sidecars between "
        "consecutive snapshots (sidecars enable incremental analysis of "
        "the produced archive; written only when 2+ snapshots ingest)",
    )
    parser.add_argument(
        "--chunk-records",
        type=int,
        default=None,
        metavar="N",
        help="records per streaming chunk (default 65536; shrunk "
        "automatically under --memory-budget)",
    )
    parser.add_argument(
        "--max-bad-records",
        type=int,
        default=None,
        metavar="N",
        help="abort a source file (file-level fault) after N bad records",
    )
    parser.add_argument(
        "--max-bad-ratio",
        type=float,
        default=None,
        metavar="R",
        help="abort a source file when more than fraction R of its "
        "records are bad (checked once a full chunk has been seen)",
    )
    parser.add_argument(
        "--ost-count",
        type=int,
        default=None,
        metavar="N",
        help="OST count of the source file system; enables the stripe-"
        "index range check (indices must fall in [0, N))",
    )
    parser.add_argument(
        "--allow-relative",
        action="store_true",
        help="accept relative paths (default: a namespace dump is rooted, "
        "non-absolute paths are rejected)",
    )
    parser.add_argument(
        "--keep-duplicate-paths",
        action="store_true",
        help="accept records whose path repeats an earlier record's "
        "(default: duplicates are rejected — they break the analyses' "
        "unique-path set algebra)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget; on expiry the ingest stops gracefully "
        "between chunks, prints the resume hint, and exits "
        f"{EXIT_DEADLINE}",
    )
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES",
        help="byte ceiling for resident ingest state (accepts 512M / 2G "
        "/ plain bytes); the record chunk size is shrunk to fit, so a "
        "multi-GB dump ingests in far less memory than its size",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="after ingesting, run the paper analyses over the produced "
        "archive (the ingest health report is folded into the archive "
        "health report)",
    )
    parser.add_argument(
        "--analyses",
        default="all",
        help="analyses to run with --analyze (comma-separated; default all)",
    )
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument(
        "--purge-window", type=int, default=90, help="purge window in days"
    )
    parser.add_argument(
        "--allow-config-mismatch",
        action="store_true",
        help="with --analyze: downgrade a manifest config mismatch to a "
        "warning",
    )
    parser.add_argument("--verbose", action="store_true")
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve an analyzed archive over HTTP: per-figure aggregates "
            "(/v1/figures) and per-user/-project/-domain slices "
            "(/v1/slice/<dim>/<key>) with deadlines, load shedding, "
            "circuit breaking, and graceful SIGTERM drain."
        ),
    )
    parser.add_argument(
        "archive", metavar="DIR", help=".rpq archive directory to serve"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port (0 picks an ephemeral port, printed on startup)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        metavar="N",
        help="engine-backed requests executing concurrently",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        metavar="N",
        help="admitted-but-waiting requests beyond the workers; past "
        "this, requests shed with 429 + Retry-After",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="per-request wall-clock budget; at expiry the engine stops "
        "at the next snapshot boundary and the response carries the "
        "covered prefix plus a typed degraded marker",
    )
    parser.add_argument(
        "--grace-seconds",
        type=float,
        default=5.0,
        metavar="S",
        help="SIGTERM drain budget: stop accepting, let in-flight "
        "requests finish for S seconds, then cancel them and exit 0 "
        "(a second signal hard-aborts immediately)",
    )
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES",
        help="byte ceiling for admission (512M / 2G / bytes): requests "
        "whose projected working set exceeds it shed with 429",
    )
    parser.add_argument(
        "--tenant-limit",
        type=int,
        default=64,
        metavar="N",
        help="per-tenant (X-Tenant header) slice requests per "
        "--tenant-window; 0 disables rate limiting",
    )
    parser.add_argument(
        "--tenant-window", type=float, default=1.0, metavar="S",
        help="rate-limit window seconds",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="consecutive archive faults that trip the circuit breaker "
        "(figures then serve stale; slices 503 until a probe recovers)",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=2.0, metavar="S",
        help="seconds the breaker stays open before a half-open probe",
    )
    parser.add_argument(
        "--analyses", default="all",
        help="analyses to warm (comma-separated; default all)",
    )
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--scale", type=float, default=2.5e-5)
    parser.add_argument("--weeks", type=int, default=72)
    parser.add_argument(
        "--purge-window", type=int, default=90, help="purge window in days"
    )
    parser.add_argument(
        "--allow-config-mismatch",
        action="store_true",
        help="downgrade a manifest config mismatch to a warning",
    )
    parser.add_argument(
        "--follow",
        action="store_true",
        help="track a growing archive: a background follower polls the "
        "manifest generation, replays new .rpd deltas through journaled "
        "kernel state (O(delta) re-warm, zero snapshot loads for "
        "converted kernels), and atomically swaps aggregates + ETag "
        "while requests keep serving last-good",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=2.0, metavar="S",
        help="seconds between the follower's manifest-generation polls "
        "(with --follow)",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="warm via journaled kernel state + .rpd delta replay even "
        "without --follow (implied by --follow)",
    )
    return parser


def build_synth_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro synth",
        description=(
            "Sharded synthesis: partition the simulated center into N "
            "project shards, run them on supervised workers (crash "
            "restarts, straggler deadlines, quarantine), and merge the "
            "per-shard weekly scans into one analyzable .rpq archive. "
            "The merged archive is byte-identical for a fixed --shards "
            "regardless of --workers, scheduling order, or worker crashes."
        ),
    )
    parser.add_argument(
        "--out", required=True, metavar="DIR",
        help="merged archive directory (per-shard parts land in DIR/parts)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, metavar="N",
        help="shard count — part of the archive's identity: the same "
        "--shards always reproduces the same bytes (default: 4)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="W",
        help="concurrent worker processes (0 = run shards inline, the "
        "reference execution every worker count reproduces exactly)",
    )
    parser.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver", "serial"),
        default=None,
        help="worker start method (default: platform default; "
        "REPRO_START_METHOD overrides; serial forces inline)",
    )
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument(
        "--scale", type=float, default=2.5e-5,
        help="fraction of the paper's per-domain entry counts to simulate",
    )
    parser.add_argument("--weeks", type=int, default=72)
    parser.add_argument("--users", type=int, default=1362, metavar="N",
                        help="population size (the hot loop is vectorized; "
                        "millions are fine)")
    parser.add_argument(
        "--purge-window", type=int, default=90, help="purge window in days"
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="per-shard attempt ceiling before quarantine (default: 3)",
    )
    parser.add_argument(
        "--stall-timeout", type=float, default=30.0, metavar="S",
        help="straggler watchdog: warn when a shard's checkpoint journal "
        "stops growing for S seconds (default: 30)",
    )
    parser.add_argument(
        "--shard-max-seconds", type=float, default=None, metavar="S",
        help="per-attempt deadline (a RunController.child of the run "
        "budget); expiry kills the worker and costs one attempt",
    )
    parser.add_argument(
        "--on-error",
        choices=("raise", "skip", "quarantine"),
        default="raise",
        help="shard failure policy: raise fails fast on the first "
        "quarantined shard or corrupt part (default); skip/quarantine "
        "fold them into the archive health report and merge the rest",
    )
    parser.add_argument(
        "--no-deltas", action="store_true",
        help="skip writing the per-interval .rpd delta sidecars",
    )
    parser.add_argument(
        "--format-version", type=int, choices=(2, 3), default=None,
        help="on-disk .rpq container for parts and the merged archive",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="wall-clock budget for the whole run; on expiry outstanding "
        "workers are cancelled, the resume hint printed, and the exit "
        f"code is {EXIT_DEADLINE} (re-running resumes from the per-shard "
        "journals)",
    )
    parser.add_argument(
        "--grace-seconds", type=float, default=5.0, metavar="S",
        help="drain budget after a stop is requested (default: 5)",
    )
    parser.add_argument("--verbose", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: the only place signal handlers are installed.

    Library callers construct a :class:`RunController` and pass it down
    explicitly; the CLI owns the process, so it routes SIGINT/SIGTERM into
    the controller's token and converts a graceful
    :class:`RunInterrupted` stop into conventional exit codes
    (130 signal, 124 deadline — like ``timeout(1)``).

    ``repro ingest ...`` dispatches to the trace-ingestion verb,
    ``repro serve ...`` to the archive HTTP server, ``repro synth ...`` to
    the sharded-simulation supervisor; anything else is the classic
    simulate/analyze pipeline.
    """
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["ingest"]:
        return ingest_main(argv[1:])
    if argv[:1] == ["serve"]:
        return serve_main(argv[1:])
    if argv[:1] == ["synth"]:
        return synth_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        controller = RunController(
            max_seconds=args.max_seconds,
            memory_budget=args.memory_budget,
            grace_seconds=args.grace_seconds,
        )
    except ValueError as exc:
        parser.error(str(exc))
    with controller.install_signal_handlers():
        try:
            return _run(args, controller)
        except RunInterrupted as err:
            print(f"# interrupted: {err}", file=sys.stderr)
            return EXIT_SIGNAL if "SIG" in err.reason else EXIT_DEADLINE


def ingest_main(argv: list[str]) -> int:
    """The ``repro ingest`` verb (same signal/exit-code conventions)."""
    parser = build_ingest_parser()
    args = parser.parse_args(argv)
    try:
        controller = RunController(
            max_seconds=args.max_seconds,
            memory_budget=args.memory_budget,
        )
    except ValueError as exc:
        parser.error(str(exc))
    with controller.install_signal_handlers():
        try:
            return _run_ingest(args, controller)
        except RunInterrupted as err:
            print(f"# interrupted: {err}", file=sys.stderr)
            return EXIT_SIGNAL if "SIG" in err.reason else EXIT_DEADLINE


def synth_main(argv: list[str]) -> int:
    """The ``repro synth`` verb (same signal/exit-code conventions)."""
    parser = build_synth_parser()
    args = parser.parse_args(argv)
    try:
        controller = RunController(
            max_seconds=args.max_seconds, grace_seconds=args.grace_seconds
        )
    except ValueError as exc:
        parser.error(str(exc))
    with controller.install_signal_handlers():
        try:
            return _run_synth(args, controller)
        except RunInterrupted as err:
            print(f"# interrupted: {err}", file=sys.stderr)
            if err.resume_hint:
                print(f"# resume: {err.resume_hint}", file=sys.stderr)
            return EXIT_SIGNAL if "SIG" in err.reason else EXIT_DEADLINE


def _run_synth(args: argparse.Namespace, controller: RunController) -> int:
    from repro.query.supervisor import ShardFailedError, SupervisorConfig
    from repro.synth.sharding import run_sharded

    config = SimulationConfig(
        seed=args.seed,
        scale=args.scale,
        weeks=args.weeks,
        n_users=args.users,
        purge_window_days=args.purge_window,
    )
    supervisor = SupervisorConfig(
        workers=args.workers,
        start_method=args.start_method,
        max_attempts=args.max_attempts,
        stall_timeout_seconds=args.stall_timeout,
        shard_max_seconds=args.shard_max_seconds,
    )
    t0 = time.time()
    try:
        result = run_sharded(
            config,
            args.shards,
            args.out,
            supervisor=supervisor,
            controller=controller,
            on_error=args.on_error,
            deltas=not args.no_deltas,
            format_version=args.format_version,
        )
    except ShardFailedError as err:
        print(f"# shard failure: {err}", file=sys.stderr)
        print(
            "# re-run to retry (journaled weeks are kept), or use "
            "--on-error skip to merge the surviving shards",
            file=sys.stderr,
        )
        return 1
    rows = sum(rec["rows"] for rec in result.records)
    print(
        f"# {result.stats.summary()}",
        file=sys.stderr,
    )
    print(
        f"# merged {len(result.records)} weekly snapshots "
        f"({rows:,} rows) into {result.directory} ({time.time() - t0:.1f}s)",
        file=sys.stderr,
    )
    if result.health.degraded:
        print("# ARCHIVE DEGRADED:", file=sys.stderr)
        for line in result.health.summary().splitlines():
            print(f"#   {line}", file=sys.stderr)
    if args.verbose:
        for rec in result.records:
            print(
                f"#   {rec['label']}: {rec['rows']:>9,d} rows "
                f"({rec['stored_bytes']:,} B)",
                file=sys.stderr,
            )
    return 0


def serve_main(argv: list[str]) -> int:
    """The ``repro serve`` verb.

    Signal contract (matches the batch CLI's): the first SIGTERM/SIGINT
    starts a graceful drain — stop accepting, let in-flight requests
    finish (or cancel them) within ``--grace-seconds`` — and exits 0; a
    second signal hard-aborts with exit 130.  Signal handlers live here
    and only here; the server/library never touches signal disposition.
    """
    import asyncio
    import signal as signal_mod

    from repro.core.runcontrol import MemoryBudget
    from repro.serve import (
        AnalysisServer,
        ArchiveService,
        CircuitBreaker,
        ServerConfig,
    )

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    try:
        budget = (
            MemoryBudget(args.memory_budget)
            if args.memory_budget is not None
            else None
        )
        controller = RunController(
            memory_budget=budget, grace_seconds=args.grace_seconds
        )
        server_config = ServerConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
            request_timeout_s=args.request_timeout,
            grace_seconds=args.grace_seconds,
            memory_budget=budget,
            tenant_limit=args.tenant_limit if args.tenant_limit > 0 else None,
            tenant_window_s=args.tenant_window,
        )
    except ValueError as exc:
        parser.error(str(exc))
    config = SimulationConfig(
        seed=args.seed,
        scale=args.scale,
        weeks=args.weeks,
        purge_window_days=args.purge_window,
    )
    service = ArchiveService(
        args.archive,
        config=config,
        analyses=args.analyses,
        controller=controller,
        breaker=CircuitBreaker(
            threshold=args.breaker_threshold,
            cooldown_s=args.breaker_cooldown,
        ),
        allow_config_mismatch=args.allow_config_mismatch,
        incremental=args.follow or args.incremental,
    )
    t0 = time.time()
    service.warm()
    print(
        f"# warmed {len(service.collection)} snapshots, "
        f"{len(service.figure_names())} figures ({time.time() - t0:.1f}s)",
        file=sys.stderr,
    )
    follower = None
    if args.follow:
        from repro.serve import ArchiveFollower

        follower = ArchiveFollower(
            service, poll_interval_s=args.poll_interval
        )
        follower.start()
        print(
            f"# following generation {service.generation} "
            f"(poll every {args.poll_interval:g}s)",
            file=sys.stderr,
        )
    server = AnalysisServer(service, server_config, controller=controller)
    try:
        return asyncio.run(_serve_forever(server, signal_mod))
    finally:
        if follower is not None:
            follower.stop()


async def _serve_forever(server, signal_mod) -> int:
    """Run the accept loop until a signal drains (0) or hard-aborts (130)."""
    import asyncio

    loop = asyncio.get_running_loop()
    finished = loop.create_future()
    signal_count = 0

    def note(message: str) -> None:
        # shutdown progress is best-effort: when the operator's terminal
        # pipeline died with the signal (^C to a `| tee` group), stderr is
        # a broken pipe and print raises — that must never stop the drain
        try:
            print(message, file=sys.stderr)
        except OSError:
            pass

    def on_signal(name: str) -> None:
        nonlocal signal_count
        signal_count += 1
        if signal_count == 1:

            async def _drain() -> None:
                await server.drain(f"received {name}")
                if not finished.done():
                    finished.set_result(0)

            loop.create_task(_drain())
            note(
                f"# received {name}: draining (grace "
                f"{server.config.grace_seconds:g}s)"
            )
        elif not finished.done():
            finished.set_result(EXIT_SIGNAL)
            note(f"# second {name}: hard abort")

    for signum in (signal_mod.SIGTERM, signal_mod.SIGINT):
        loop.add_signal_handler(
            signum, on_signal, signal_mod.Signals(signum).name
        )
    await server.start()
    # flush=True and a parseable PORT line: acceptance tests (and reverse
    # proxies) read the bound ephemeral port from here
    print(
        f"# serving on http://{server.config.host}:{server.port} "
        f"(PORT={server.port})",
        flush=True,
    )
    code = await finished
    note("# drained; bye")
    return int(code)


def _run_ingest(args: argparse.Namespace, controller: RunController) -> int:
    from repro.ingest import IngestConfig, ValidationLimits, ingest_trace

    limits = ValidationLimits(
        require_absolute=not args.allow_relative,
        ost_count=args.ost_count,
        reject_duplicate_paths=not args.keep_duplicate_paths,
    )
    kwargs = {"on_error": args.on_error, "limits": limits}
    if args.chunk_records is not None:
        kwargs["chunk_records"] = args.chunk_records
    ingest_config = IngestConfig(
        max_bad_records=args.max_bad_records,
        max_bad_ratio=args.max_bad_ratio,
        **kwargs,
    )
    manifest_config = SimulationConfig(
        seed=args.seed, purge_window_days=args.purge_window
    )
    sources = args.sources[0] if len(args.sources) == 1 else args.sources
    t0 = time.time()
    result = ingest_trace(
        sources,
        args.out,
        ingest_config,
        checkpoint=args.checkpoint,
        controller=controller,
        manifest_config=manifest_config,
        deltas=not args.no_deltas,
    )
    report = result.report
    print(
        f"# ingested {report.rows:,}/{report.records:,} records from "
        f"{len(report.files)} trace file(s) into {len(result.outputs)} "
        f"snapshot(s) ({time.time() - t0:.1f}s)",
        file=sys.stderr,
    )
    if report.degraded:
        print("# INGEST DEGRADED:", file=sys.stderr)
        for line in report.summary().splitlines():
            print(f"#   {line}", file=sys.stderr)
    if args.analyze:
        from repro.core.pipeline import analyze_archive

        pipeline, paper = analyze_archive(
            result.out_dir,
            config=manifest_config,
            analyses=args.analyses,
            allow_config_mismatch=args.allow_config_mismatch,
            controller=controller,
            ingest_report=report,
        )
        print(paper.text)
        health = pipeline.context.collection.health_report()
        if health.degraded:
            print("# ARCHIVE DEGRADED:", file=sys.stderr)
            for line in health.summary().splitlines():
                print(f"#   {line}", file=sys.stderr)
    return 0


def _run(args: argparse.Namespace, controller: RunController) -> int:
    config = SimulationConfig(
        seed=args.seed,
        scale=args.scale,
        weeks=args.weeks,
        purge_window_days=args.purge_window,
    )
    executor = SnapshotExecutor(
        processes=None if args.parallel else 1,
        start_method=args.start_method,
    )
    t0 = time.time()
    if args.from_archive:
        from repro.core.pipeline import analyze_archive

        pipeline, report = analyze_archive(
            args.from_archive,
            config=config,
            executor=executor,
            burstiness_min_files=args.burstiness_min_files,
            analyses=args.analyses,
            fused=not args.legacy_passes,
            on_error=args.on_error,
            checkpoint=args.checkpoint,
            allow_config_mismatch=args.allow_config_mismatch,
            controller=controller,
            max_task_failures=args.max_task_failures,
            incremental=args.incremental,
        )
        print(
            f"# analyzed {pipeline.simulation.n_snapshots} archived "
            f"snapshots out-of-core ({time.time() - t0:.1f}s)",
            file=sys.stderr,
        )
        health = pipeline.context.collection.health_report()
        if health.degraded:
            print("# ARCHIVE DEGRADED:", file=sys.stderr)
            for line in health.summary().splitlines():
                print(f"#   {line}", file=sys.stderr)
    else:
        pipeline = ReproPipeline(
            config=config,
            executor=executor,
            burstiness_min_files=args.burstiness_min_files,
            controller=controller,
        )
        sim = pipeline.simulate(verbose=args.verbose)
        print(
            f"# simulated {sim.n_snapshots} snapshots, "
            f"{len(sim.collection.paths):,} unique paths "
            f"({time.time() - t0:.1f}s)",
            file=sys.stderr,
        )
        if args.archive_dir:
            stats = pipeline.archive(
                args.archive_dir,
                deltas=not args.no_deltas,
                format_version=args.format_version,
            )
            print(
                f"# archive: PSV {stats.psv_bytes:,} B → columnar "
                f"{stats.columnar_bytes:,} B ({stats.reduction:.1f}x reduction)",
                file=sys.stderr,
            )
        report = pipeline.analyze(
            analyses=args.analyses, fused=not args.legacy_passes
        )
    if args.export_dir:
        from repro.analysis.export import export_all

        written = export_all(report, args.export_dir)
        print(f"# exported {len(written)} CSV series to {args.export_dir}",
              file=sys.stderr)
    print(report.text)
    if args.engine_stats:
        from repro.analysis.report import render_execution_stats

        print("\n== EXECUTION ENGINE ==", file=sys.stderr)
        print(
            render_execution_stats(pipeline.context.execution_stats),
            file=sys.stderr,
        )
    if args.scorecard:
        from repro.analysis.observations import (
            check_observations,
            render_observations,
        )

        print("\n== OBSERVATIONS SCORECARD ==")
        print(render_observations(check_observations(report)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
