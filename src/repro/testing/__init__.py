"""Reusable test instrumentation for the reproduction.

:mod:`repro.testing.faults` is the fault-injection harness: file
corruption (truncation, bit flips), transient I/O errors, and process-kill
wrappers that drive both the corruption-sweep test suites and the
``scripts/chaos_soak.py`` ablation.
"""

from repro.testing.faults import (
    FlakyReader,
    bit_flip,
    corruption_points,
    sigkill_after,
    truncate_at,
)

__all__ = [
    "FlakyReader",
    "bit_flip",
    "corruption_points",
    "sigkill_after",
    "truncate_at",
]
