"""Fault-injection harness for the archive→analyze path.

Robinhood and Icicle exist because namespace scans over billions of
entries fail partway; this module makes those failures *reproducible* so
the data path's tolerance can be tested instead of hoped for.  It provides:

* **file corruption** — :func:`truncate_at` and :func:`bit_flip` damage a
  snapshot file in place; :func:`corruption_points` enumerates every
  section boundary of a ``.rpq`` so a sweep can hit them all, while
  :func:`block_edges` / :func:`padding_spans` expose the v3 layout's
  block-alignment edges and data-free pad gaps for boundary-exact sweeps;
* **transient I/O errors** — :class:`FlakyReader` wraps a loader so the
  first N calls raise ``OSError(EIO)`` and later ones succeed, exercising
  the store's retry-with-backoff;
* **process kills** — :func:`sigkill_after` wraps a loader so the process
  SIGKILLs itself after N successful loads, exercising checkpoint/resume
  with a *real* kill (no cooperative exception);
* **torn publishes** — :func:`torn_publish` runs a writer's data phase but
  rolls the manifest back to its pre-publish bytes, reproducing a crash
  between the data fsyncs and the manifest commit; a follower must keep
  serving the old generation and never read the stray files.

Both the pytest corruption suites and ``scripts/chaos_soak.py`` are built
on these primitives.
"""

from __future__ import annotations

import contextlib
import errno
import os
import signal
from pathlib import Path
from typing import Any, Callable


def truncate_at(path: str | Path, offset: int) -> None:
    """Truncate ``path`` to ``offset`` bytes in place (a partial write)."""
    size = os.path.getsize(path)
    if not 0 <= offset <= size:
        raise ValueError(f"offset {offset} outside file of {size} bytes")
    with open(path, "r+b") as fh:
        fh.truncate(offset)


def bit_flip(path: str | Path, offset: int, bit: int = 0) -> None:
    """Flip one bit of the byte at ``offset`` in place (silent corruption)."""
    if not 0 <= bit < 8:
        raise ValueError("bit must be in 0..7")
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        if len(byte) != 1:
            raise ValueError(f"offset {offset} beyond end of {path}")
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ (1 << bit)]))


def corruption_points(path: str | Path) -> list[tuple[str, int, int]]:
    """``(section, offset, length)`` for every section of a valid ``.rpq``.

    Truncating at any returned offset, or flipping any byte inside any
    returned span, must surface as a typed
    :class:`~repro.scan.errors.CorruptSnapshotError` — never as silently
    wrong data.  Enumerate *before* corrupting (the file must be valid).
    """
    from repro.scan.columnar import describe_sections

    return describe_sections(path)


def block_edges(path: str | Path) -> list[tuple[str, int, int]]:
    """``(section, first_byte, last_byte)`` of every stored section.

    The exact edge offsets of each block's stored bytes — for v3 these are
    the mmap block boundaries (the bytes adjacent to alignment padding),
    where an off-by-one in offset bookkeeping would corrupt or miss data.
    A bit flip at either returned offset must raise a typed
    :class:`~repro.scan.errors.CorruptSnapshotError` on read.
    """
    return [
        (name, offset, offset + max(1, length) - 1)
        for name, offset, length in corruption_points(path)
    ]


def padding_spans(path: str | Path) -> list[tuple[int, int]]:
    """``(offset, length)`` of every alignment-padding gap in a ``.rpq``.

    v3 block-aligns sections, leaving zero-filled gaps that carry no data
    and no CRC — the corruption sweep's only deliberate blind spots.
    Flipping a pad byte must leave every decoded array byte-identical
    (the pads are not data), while truncating inside one must still raise
    typed (the trailer's total-length check).  Empty for v1/v2 files,
    whose sections tile the file exactly.
    """
    size = os.path.getsize(path)
    sections = sorted(corruption_points(path), key=lambda s: s[1])
    spans: list[tuple[int, int]] = []
    offset = 0
    for _, start, length in sections:
        if start > offset:
            spans.append((offset, start - offset))
        offset = start + length
    if size > offset:
        spans.append((offset, size - offset))
    return spans


@contextlib.contextmanager
def torn_publish(directory: str | Path):
    """Simulate a publish that crashed before its manifest commit.

    The publish protocol writes data + sidecars first and commits
    ``manifest.json`` (with a bumped ``generation``) last.  This context
    manager snapshots the manifest's bytes, lets the body run a real
    publish (data files land on disk, manifest gets rewritten), then
    *restores the pre-publish manifest* — exactly the on-disk state left
    by a writer killed between its last data fsync and the manifest
    rename.  The stray data files remain, as they would after the crash.

    A generation-fenced reader must shrug: the generation never moved, so
    the new files are invisible and the old window keeps serving.

    Example::

        with torn_publish(archive_dir):
            pipeline.archive(archive_dir, max_snapshots=k + 1,
                             skip_existing=True)
        # archive_dir now has snapshot k's files but the old manifest
    """
    manifest = Path(directory) / "manifest.json"
    before = manifest.read_bytes() if manifest.exists() else None
    try:
        yield
    finally:
        if before is None:
            manifest.unlink(missing_ok=True)
        else:
            manifest.write_bytes(before)


def mutate_bytes(data: bytes, rng, mutations: int = 1) -> bytes:
    """Return ``data`` with ``mutations`` random byte-level edits.

    Each edit is one of: flip a bit, delete a byte, insert a random byte,
    or overwrite a byte — the damage profile of a trace dump mangled in
    transit.  Deterministic for a given ``rng`` (``random.Random``) state;
    the ingest fuzz suites assert every mutant either parses to the same
    values or dies with a *typed* error, never a silently different
    record.
    """
    if mutations < 0:
        raise ValueError("mutations must be >= 0")
    out = bytearray(data)
    for _ in range(mutations):
        op = rng.randrange(4)
        if not out:
            op = 2  # only insertion is possible on an empty buffer
        if op == 0:  # bit flip
            i = rng.randrange(len(out))
            out[i] ^= 1 << rng.randrange(8)
        elif op == 1:  # delete
            del out[rng.randrange(len(out))]
        elif op == 2:  # insert
            out.insert(rng.randrange(len(out) + 1), rng.randrange(256))
        else:  # overwrite
            out[rng.randrange(len(out))] = rng.randrange(256)
    return bytes(out)


class FlakyReader:
    """Wrap a loader: the first ``failures`` calls raise a transient error.

    The default exception is ``OSError(EIO)`` — the transient-media-error
    case the store's retry-with-backoff exists for.  Thread-unsafe by
    design (deterministic call counting).

    Example::

        flaky = FlakyReader(read_columnar, failures=2)
        collection._reader = flaky      # or monkeypatch the module function
        collection[0]                   # succeeds on the 3rd attempt
        assert flaky.calls == 3
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        failures: int,
        exc_factory: Callable[[], BaseException] | None = None,
    ) -> None:
        self.fn = fn
        self.failures = failures
        self.exc_factory = exc_factory or (
            lambda: OSError(errno.EIO, "injected transient I/O error")
        )
        self.calls = 0

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_factory()
        return self.fn(*args, **kwargs)


def sigkill_after(
    fn: Callable[..., Any], successes: int
) -> Callable[..., Any]:
    """Wrap a loader so the process SIGKILLs itself after N successes.

    A *real* ``SIGKILL`` — no atexit handlers, no finally blocks — which is
    exactly the crash the checkpoint journal must survive.  Use inside a
    sacrificial subprocess, not the test runner itself.
    """
    state = {"done": 0}

    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if state["done"] >= successes:
            os.kill(os.getpid(), signal.SIGKILL)
        result = fn(*args, **kwargs)
        state["done"] += 1
        return result

    return wrapper


def kill_shard_worker(
    supervisor, shard: int | None = None, rng=None
) -> int | None:
    """SIGKILL one live shard worker under a running :class:`ShardSupervisor`.

    ``shard`` picks a specific worker; ``None`` picks one at random (pass
    ``rng``, a ``random.Random``, for reproducible chaos).  Returns the
    shard whose worker was killed, or ``None`` when no worker was running
    (the injector raced the run's natural completion — callers treat that
    as a no-op, not a failure).
    """
    pids = supervisor.worker_pids()
    if shard is None:
        if not pids:
            return None
        targets = sorted(pids)
        shard = targets[rng.randrange(len(targets))] if rng is not None else targets[0]
    pid = pids.get(shard)
    if pid is None:
        return None
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:  # pragma: no cover - exit race
        return None
    return shard


def shard_kill(shard: int, after_weeks: int = 1, attempts: int = 1):
    """A :class:`ShardFault` making the worker SIGKILL itself mid-shard.

    Deterministic crash injection: the worker dies after journaling
    ``after_weeks`` new weekly parts, on its first ``attempts`` attempts.
    """
    from repro.synth.sharding import ShardFault

    return ShardFault(
        shard=shard, kill_after_weeks=after_weeks, max_attempt=attempts
    )


def shard_stall(
    shard: int, week: int, seconds: float, attempts: int = 1
):
    """A :class:`ShardFault` injecting a progress stall (straggler).

    The worker sleeps ``seconds`` before processing ``week``, starving the
    supervisor's journal heartbeat — long enough stalls trip the watchdog
    warning and, past the shard deadline, a kill-and-restart.
    """
    from repro.synth.sharding import ShardFault

    return ShardFault(
        shard=shard, stall_week=week, stall_seconds=seconds, max_attempt=attempts
    )
