"""repro — reproduction of "Scientific User Behavior and Data-Sharing
Trends in a Petascale File System" (Lim, Sim, Gunasekaran, Vazhkudai,
SC'17, DOI 10.1145/3126908.3126924).

The package builds, from scratch, everything the study needs:

* :mod:`repro.fs` — a Lustre-like parallel file system simulator (POSIX
  timestamps, OST striping, purge policy, quotas, optional changelog and
  HPSS archive tier);
* :mod:`repro.synth` — a synthetic OLCF: 35 science domains, 1,362 users,
  380 projects, per-project workload models calibrated to the paper's
  published per-domain statistics, plus a batch-scheduler job log and a
  portable workload-trace format;
* :mod:`repro.scan` — the LustreDU metadata scanner, PSV snapshot codec,
  columnar snapshot store, and purge-list generation;
* :mod:`repro.query`, :mod:`repro.stats`, :mod:`repro.graph` — the
  columnar query engine, statistics, and graph algorithms the analyses
  are built on;
* :mod:`repro.analysis` — one module per paper artifact (Tables 1–3,
  Figures 5–20) plus the Observations scorecard and CSV exporters;
* :mod:`repro.core` — the end-to-end pipeline and the ``repro-pipeline``
  CLI.

Quickstart::

    from repro.core.pipeline import run_paper_report
    from repro.synth.driver import SimulationConfig

    pipeline, report = run_paper_report(SimulationConfig(scale=1e-5))
    print(report.text)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
