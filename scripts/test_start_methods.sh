#!/bin/sh
# Run the tier-1 suite under every multiprocessing start method the
# execution engine supports.  REPRO_START_METHOD overrides the engine's
# default process-wide, so the same tests exercise fork (copy-on-write
# inheritance), spawn (shared-memory column transport), and the serial
# path without any code changes.
#
# Usage: scripts/test_start_methods.sh [pytest args...]
#   e.g. scripts/test_start_methods.sh tests/query -q
set -e

cd "$(dirname "$0")/.."
export PYTHONPATH=src

ARGS="${*:--x -q}"

for method in "" spawn serial; do
    if [ -n "$method" ]; then
        echo "=== REPRO_START_METHOD=$method ==="
        REPRO_START_METHOD="$method" python -m pytest $ARGS
    else
        echo "=== default start method ==="
        python -m pytest $ARGS
    fi
done
