#!/usr/bin/env python
"""Chaos soak for the archive→analyze path.

Builds one tiny archive, then runs rounds of injected faults against it and
asserts the hardened data path's contract every time:

* corruption (truncation / bit flips) surfaces as a typed
  ``CorruptSnapshotError`` or a correct degraded report — NEVER silently
  wrong data;
* transient EIO during loads is retried and the report comes out identical
  to the fault-free baseline;
* a run killed mid-pass (simulated via an aborting reader) resumes from its
  checkpoint journal to a report byte-identical to an uninterrupted run;
* a randomly byte-mutated foreign PSV dump either ingests with per-record
  typed quarantine or fails with one typed file-level fault — and does the
  same thing, byte-identically, on a second attempt;
* a live HTTP serving round: random corruption under load yields only
  typed statuses (200 / 200-degraded / 429 / 503), figures keep serving
  (stale-marked once the breaker opens), and the archive recovers through
  the half-open probe after the fault clears — never a 500 or a hung
  connection;
* a live-follow round: a torn publish (data files landed, manifest never
  committed) is invisible to a polling follower; the writer's retry
  commits, the follower swaps under client load with only typed statuses,
  and the post-swap report is byte-identical to the batch baseline — even
  when the appended snapshot's delta sidecar was corrupted (repaired,
  warned, never silent);
* a sharded-simulation round: workers are SIGKILLed at random (plus one
  deterministic self-kill and one forced straggler that the per-shard
  deadline reaps), and the supervised run must still converge to a merged
  archive byte-identical to the unsharded-worker inline baseline, with an
  analysis report to match.

Exit status is non-zero on any contract violation.  Runtime is kept short
(~tens of seconds at the default ``--rounds``) so CI can run it on every
push::

    PYTHONPATH=src python scripts/chaos_soak.py --rounds 3
"""

from __future__ import annotations

import argparse
import random
import shutil
import signal
import sys
import tempfile
import threading
import time
import warnings
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pipeline import ReproPipeline, analyze_archive  # noqa: E402
from repro.query.parallel import SnapshotExecutor, TaskError  # noqa: E402
from repro.scan.errors import CorruptSnapshotError  # noqa: E402
from repro.synth.driver import SimulationConfig  # noqa: E402
from repro.testing.faults import bit_flip, corruption_points, truncate_at  # noqa: E402

#: Small but non-trivial window: enough snapshots for pair kernels and a
#: meaningful resume point, small enough to soak in seconds.
CONFIG = SimulationConfig(
    seed=2015, scale=3e-6, weeks=8, min_project_files=4, stress_depths=False
)
ANALYSES = "census,access,growth,ages"


#: the simulated pipeline behind the soak archive — the follow round
#: re-publishes its snapshots incrementally to drive the live follower
PIPELINE: dict = {}


def build_archive(directory: Path) -> str:
    pipeline = ReproPipeline(config=CONFIG, executor=SnapshotExecutor(1))
    pipeline.simulate()
    pipeline.archive(directory)
    PIPELINE["p"] = pipeline
    _, report = analyze_archive(
        directory, config=CONFIG, executor=SnapshotExecutor(1), analyses=ANALYSES
    )
    return report.text


def fresh_copy(archive: Path, workdir: Path) -> Path:
    target = workdir / "round"
    if target.exists():
        shutil.rmtree(target)
    shutil.copytree(archive, target)
    return target


def analyze(directory: Path, **kwargs) -> str:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        _, report = analyze_archive(
            directory,
            config=CONFIG,
            executor=SnapshotExecutor(1),
            analyses=ANALYSES,
            **kwargs,
        )
    return report.text


def soak_corruption(archive: Path, workdir: Path, rng: random.Random,
                    baseline: str) -> list[str]:
    """One corrupted file per round: typed error under raise, correct
    degraded report under skip."""
    errors: list[str] = []
    target = fresh_copy(archive, workdir)
    victims = sorted(target.glob("*.rpq"))
    victim = rng.choice(victims)
    sections = corruption_points(victim)
    name, off, length = rng.choice(sections)
    if rng.random() < 0.5:
        point = rng.randrange(off, off + max(1, length))
        truncate_at(victim, min(point, victim.stat().st_size))
        fault = f"truncate {victim.name} at {point} (section {name})"
    else:
        point = off + rng.randrange(max(1, length))
        bit_flip(victim, point, bit=rng.randrange(8))
        fault = f"bit-flip {victim.name} at {point} (section {name})"
    # contract 1: on_error="raise" must raise a typed error.  Corruption
    # caught at construction raises CorruptSnapshotError directly; a fault
    # first seen inside the fused pass arrives wrapped in a TaskError whose
    # worker traceback names the typed error — both are attributable.
    try:
        analyze(target)
        errors.append(f"{fault}: analysis succeeded under on_error='raise'")
    except CorruptSnapshotError:
        pass
    except TaskError as exc:
        if "CorruptSnapshotError" not in str(exc):
            errors.append(f"{fault}: TaskError without a typed cause: {exc}")
    except Exception as exc:  # noqa: BLE001 - contract check
        errors.append(f"{fault}: wrong exception type {type(exc).__name__}: {exc}")
    # contract 2: on_error="skip" must produce a report over the survivors
    # (deep-verified), and that report must differ from a pristine run only
    # because a snapshot is missing — it must never equal the baseline while
    # claiming full coverage, and it must never crash.
    try:
        degraded = analyze(target, on_error="skip")
    except CorruptSnapshotError as exc:
        errors.append(f"{fault}: skip policy still raised: {exc}")
        return errors
    expected = analyze_without(archive, workdir, victim.name)
    if degraded != expected:
        errors.append(
            f"{fault}: degraded report does not match a clean run over the "
            "surviving window (silent wrong data)"
        )
    return errors


def analyze_without(archive: Path, workdir: Path, victim_name: str) -> str:
    """Ground truth: the report over the window minus the victim file."""
    target = workdir / "truth"
    if target.exists():
        shutil.rmtree(target)
    shutil.copytree(archive, target)
    (target / victim_name).unlink()
    return analyze(target)


def soak_resume(archive: Path, workdir: Path, rng: random.Random,
                baseline: str) -> list[str]:
    """Abort a checkpointed run partway, resume, compare to the baseline."""
    import repro.scan.store as store_mod

    errors: list[str] = []
    target = fresh_copy(archive, workdir)
    journal = workdir / "soak.journal"
    journal.unlink(missing_ok=True)
    n_files = len(list(target.glob("*.rpq")))
    abort_after = rng.randrange(1, max(2, n_files))

    class _Abort(Exception):
        pass

    real_open = store_mod.open_columnar
    state = {"loads": 0}

    def aborting_open(path, paths, **kwargs):
        if state["loads"] >= abort_after:
            raise _Abort()
        state["loads"] += 1
        return real_open(path, paths, **kwargs)

    store_mod.open_columnar = aborting_open
    try:
        analyze(target, checkpoint=journal)
        errors.append(f"aborting reader (after {abort_after} loads) never fired")
    except (TaskError, _Abort) as exc:
        # the engine wraps the task-side abort in a TaskError
        if isinstance(exc, TaskError) and "_Abort" not in str(exc):
            errors.append(f"abort surfaced as an unrelated TaskError: {exc}")
    finally:
        store_mod.open_columnar = real_open
    if not journal.exists():
        errors.append(
            f"no journal survived an abort after {abort_after} loads"
        )
        return errors
    resumed = analyze(target, checkpoint=journal)
    if resumed != baseline:
        errors.append(
            f"resumed report (abort after {abort_after} loads) differs from "
            "the uninterrupted baseline"
        )
    if journal.exists():
        errors.append("journal not cleaned up after a successful resumed run")
    return errors


def soak_transient(archive: Path, workdir: Path, rng: random.Random,
                   baseline: str) -> list[str]:
    """Random transient EIO faults: retries must yield the exact baseline."""
    import errno

    import repro.scan.store as store_mod

    errors: list[str] = []
    target = fresh_copy(archive, workdir)
    real_open = store_mod.open_columnar
    fail_rate = 0.3

    def flaky_open(path, paths, **kwargs):
        if rng.random() < fail_rate:
            raise OSError(errno.EIO, "injected transient I/O error")
        return real_open(path, paths, **kwargs)

    store_mod.open_columnar = flaky_open
    try:
        # ~0.3 fail rate vs 2 retries: P(task failure) ≈ 2.7% per load; the
        # occasional exhausted retry is legitimate and must surface as the
        # injected EIO (raw, or wrapped in a TaskError by the fused pass)
        flaky = analyze(target)
    except (OSError, TaskError) as exc:
        if "injected transient" not in str(exc):
            errors.append(f"transient faults surfaced wrong error: {exc!r}")
        return errors
    finally:
        store_mod.open_columnar = real_open
    if flaky != baseline:
        errors.append("report under transient EIO differs from baseline")
    return errors


def soak_deadline(archive: Path, workdir: Path, rng: random.Random,
                  baseline: str) -> list[str]:
    """Run-control contract: deadlines/cancels stop gracefully and resume
    byte-identically from the flushed checkpoint."""
    import repro.scan.store as store_mod

    from repro.core.runcontrol import RunController, RunInterrupted

    errors: list[str] = []
    target = fresh_copy(archive, workdir)
    # contract 1: a pre-expired deadline interrupts before snapshot work,
    # with a typed error naming the deadline
    try:
        analyze(target, controller=RunController(max_seconds=0))
        errors.append("pre-expired deadline did not interrupt the run")
    except RunInterrupted as exc:
        if "deadline" not in str(exc):
            errors.append(f"interrupt without a deadline reason: {exc}")
    # contract 2: a cancel mid-pass leaves a flushed journal, and resuming
    # from it reproduces the uninterrupted baseline byte-for-byte
    journal = workdir / "deadline.journal"
    journal.unlink(missing_ok=True)
    n_files = len(list(target.glob("*.rpq")))
    cancel_after = rng.randrange(1, max(2, n_files - 1))
    controller = RunController()
    real_open = store_mod.open_columnar
    state = {"loads": 0}

    def cancelling_open(path, paths, **kwargs):
        state["loads"] += 1
        if state["loads"] > cancel_after:
            controller.token.cancel("soak-injected cancel")
        return real_open(path, paths, **kwargs)

    store_mod.open_columnar = cancelling_open
    try:
        analyze(target, checkpoint=journal, controller=controller)
        errors.append(
            f"cancel after {cancel_after} loads never interrupted the pass"
        )
    except RunInterrupted:
        pass
    finally:
        store_mod.open_columnar = real_open
    if not journal.exists():
        errors.append(
            f"no journal survived a cancel after {cancel_after} loads"
        )
        return errors
    resumed = analyze(target, checkpoint=journal)
    if resumed != baseline:
        errors.append(
            f"resumed report (cancel after {cancel_after} loads) differs "
            "from the uninterrupted baseline"
        )
    if journal.exists():
        errors.append("journal not cleaned up after a successful resumed run")
    return errors


def soak_ingest(archive: Path, workdir: Path, rng: random.Random,
                baseline: str) -> list[str]:
    """Untrusted-trace front door: random byte mutations may cost records
    (quarantined, with machine-readable reasons) or the whole file (one
    typed fault) — never a crash, never silent loss, and the damaged dump
    must ingest to the identical archive twice."""
    from repro.ingest import IngestConfig, ingest_file
    from repro.testing.faults import mutate_bytes

    errors: list[str] = []
    src_dir = workdir / "ingest-src"
    if src_dir.exists():
        shutil.rmtree(src_dir)
    src_dir.mkdir()
    n = 400
    lines = []
    for i in range(n):
        uid = rng.randrange(1000, 1400)
        ts = 1420000000 + rng.randrange(0, 7 * 86400)
        lines.append(
            f"/soak/p{uid % 23}/u{uid}/f{i:05d}.dat"
            f"|{ts}|{ts - 600}|{ts - 300}|{uid}|{7000 + uid % 23}"
            f"|100644|{i + 1}|{i % 16}:{i:x}"
        )
    clean = ("\n".join(lines) + "\n").encode()

    source = src_dir / "20150105.psv"
    source.write_bytes(clean)
    stats = ingest_file(source, src_dir / "clean-out", IngestConfig())
    if (stats.rows, stats.rejected) != (n, 0):
        errors.append(
            f"clean corpus lost records: {stats.rows}/{n} rows, "
            f"{stats.rejected} rejected"
        )

    mutated = mutate_bytes(clean, rng, mutations=rng.randrange(1, 60))
    source.write_bytes(mutated)

    def one_run(name: str):
        out = src_dir / name
        try:
            s = ingest_file(source, out, IngestConfig())
        except CorruptSnapshotError as exc:
            return ("fault", str(exc))
        except Exception as exc:  # noqa: BLE001 - contract check
            errors.append(
                f"mutated dump escaped the typed boundary: "
                f"{type(exc).__name__}: {exc}"
            )
            return ("crash", repr(exc))
        if s.rows + s.rejected > s.lines:
            errors.append(
                f"conservation violated: {s.rows}+{s.rejected} > {s.lines}"
            )
        sidecar = out / "20150105.bad"
        if s.rejected and len(sidecar.read_text().splitlines()) != s.rejected + 1:
            errors.append("sidecar entry count does not match rejected count")
        return ("ok", {
            p.name: p.read_bytes() for p in sorted(out.iterdir())
            if p.suffix in (".rpq", ".bad")
        })

    first, second = one_run("a"), one_run("b")
    if first != second:
        errors.append("mutated dump did not ingest deterministically")
    return errors


def soak_serve(archive: Path, workdir: Path, rng: random.Random,
               baseline: str) -> list[str]:
    """Serving contract under random corruption: typed statuses only,
    figures always answer (stale-marked once the breaker opens), and the
    archive recovers through the half-open probe after the fault clears."""
    from repro.serve.server import AnalysisServer, ServerConfig
    from repro.serve.service import ArchiveService, CircuitBreaker
    from repro.serve.testing import BackgroundServer

    errors: list[str] = []
    target = fresh_copy(archive, workdir)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        service = ArchiveService(
            target, config=CONFIG, analyses=ANALYSES,
            breaker=CircuitBreaker(threshold=1, cooldown_s=0.3),
        )
        service.warm()
    if service.report.text != baseline:
        errors.append("served report text differs from the batch baseline")
    domains = service.context.domain_codes
    server = AnalysisServer(
        service,
        ServerConfig(port=0, max_inflight=2, queue_depth=2,
                     tenant_limit=None, grace_seconds=3.0),
    )
    victim = rng.choice(sorted(target.glob("*.rpq")))
    pristine = victim.read_bytes()
    name, off, length = rng.choice(corruption_points(victim))
    point = off + rng.randrange(max(1, length))
    fault = f"bit-flip {victim.name} at {point} (section {name})"
    with BackgroundServer(server) as bg:
        ok = bg.request(f"/v1/slice/domain/{rng.choice(domains)}")
        if ok.status != 200:
            errors.append(f"healthy slice returned {ok.status}")
        bit_flip(victim, point, bit=rng.randrange(8))
        # the fault may or may not be on this slice's read path (resident
        # columns, un-decoded sections): either a typed 503 or a clean 200
        # is within contract — a 500 or a hang never is
        for _ in range(4):
            reply = bg.request(f"/v1/slice/domain/{rng.choice(domains)}")
            if reply.status not in (200, 429, 503):
                errors.append(f"{fault}: untyped status {reply.status}")
            fig = bg.request(f"/v1/figures/{service.figure_names()[0]}")
            if fig.status != 200:
                errors.append(
                    f"{fault}: figure unavailable ({fig.status}) — the "
                    "last good cache must always answer"
                )
            if (service.breaker.state != "closed"
                    and "x-degraded" not in fig.headers):
                errors.append(f"{fault}: open breaker but no stale marker")
        tripped = service.breaker.trips > 0
        victim.write_bytes(pristine)
        if tripped:
            # fault cleared: within a few cooldowns the half-open probe
            # must close the breaker and slices must serve again
            deadline = time.time() + 10.0
            recovered = None
            while time.time() < deadline:
                time.sleep(0.35)
                recovered = bg.request(
                    f"/v1/slice/domain/{rng.choice(domains)}"
                )
                if recovered.status == 200:
                    break
            if recovered is None or recovered.status != 200:
                errors.append(f"{fault}: archive never recovered after restore")
            if service.breaker.state != "closed":
                errors.append(f"{fault}: breaker still open after recovery")
        if 500 in server.stats.responses:
            errors.append(f"{fault}: server emitted an untyped 500")
        if sum(server.stats.responses.values()) != server.stats.requests:
            errors.append("response/request accounting out of balance")
    return errors


def soak_follow(archive: Path, workdir: Path, rng: random.Random,
                baseline: str) -> list[str]:
    """Live-follower contract: torn publishes stay invisible, corrupt
    sidecars repair warned-not-silent, the swap lands byte-identical to
    the batch baseline, and clients see only typed statuses throughout."""
    from repro.scan.delta import sidecar_path
    from repro.serve.follower import ArchiveFollower
    from repro.serve.server import AnalysisServer, ServerConfig
    from repro.serve.service import ArchiveService
    from repro.serve.testing import BackgroundServer
    from repro.testing.faults import torn_publish

    errors: list[str] = []
    pipeline = PIPELINE["p"]
    labels = [s.label for s in pipeline.simulation.collection]
    n = len(labels)
    target = workdir / "follow"
    if target.exists():
        shutil.rmtree(target)
    target.mkdir()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        pipeline.archive(target, max_snapshots=n - 1)
        # a torn publish: the new snapshot's data + sidecar land but the
        # manifest (the commit point) never moves
        with torn_publish(target):
            pipeline.archive(target, max_snapshots=n, skip_existing=True)
        fault = rng.choice(["torn", "sidecar"])
        if fault == "sidecar":
            victim = sidecar_path(target, labels[-1])
            bit_flip(victim, victim.stat().st_size // 2, bit=rng.randrange(8))
        service = ArchiveService(
            target, config=CONFIG, analyses=ANALYSES, incremental=True
        )
        service.warm()
    if len(service.collection) != n - 1:
        errors.append("warm picked up uncommitted snapshots")
    follower = ArchiveFollower(service, poll_interval_s=0.05)
    server = AnalysisServer(
        service,
        ServerConfig(port=0, max_inflight=2, queue_depth=2,
                     tenant_limit=None, grace_seconds=3.0),
    )
    fig = service.figure_names()[0]
    domain = rng.choice(service.context.domain_codes)
    statuses: dict = {}
    lock = threading.Lock()
    stop = threading.Event()

    def hammer(i: int, bg) -> None:
        path = f"/v1/figures/{fig}" if i % 2 else f"/v1/slice/domain/{domain}"
        while not stop.is_set():
            try:
                reply = bg.request(path, timeout=30.0)
            except OSError:
                with lock:
                    statuses["timeout"] = statuses.get("timeout", 0) + 1
                continue
            with lock:
                statuses[reply.status] = statuses.get(reply.status, 0) + 1

    with BackgroundServer(server) as bg:
        follower.start()
        try:
            threads = [
                threading.Thread(target=hammer, args=(i, bg)) for i in range(8)
            ]
            for t in threads:
                t.start()
            time.sleep(0.3)  # several poll intervals over the torn state
            if service.generation != 1:
                errors.append(f"{fault}: follower advanced past a torn publish")
            # the writer retries: per-file writes are atomic and already
            # done, so this is a pure manifest commit
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                pipeline.archive(target, max_snapshots=n, skip_existing=True)
            deadline = time.time() + 30.0
            while service.generation < 2 and time.time() < deadline:
                time.sleep(0.05)
            stop.set()
            for t in threads:
                t.join(timeout=30.0)
            if any(t.is_alive() for t in threads):
                errors.append(f"{fault}: hung client during the live swap")
        finally:
            follower.stop()
    if service.generation != 2:
        errors.append(f"{fault}: follower never swapped to the new generation")
    elif service.report.text != baseline:
        errors.append(
            f"{fault}: post-swap report differs from the batch baseline"
        )
    elif fault == "torn" and service.warm_info().get("snapshot_loads"):
        errors.append(
            "clean swap re-loaded snapshots instead of replaying deltas"
        )
    untyped = set(statuses) - {200, 304, 429, 503, "timeout"}
    if untyped:
        errors.append(f"{fault}: untyped statuses under follow load {untyped}")
    if 500 in server.stats.responses:
        errors.append(f"{fault}: server emitted an untyped 500 during a swap")
    return errors


#: Sharded-round window: small enough to re-simulate a shard in well under
#: a second, so random SIGKILL restarts stay cheap.
SHARD_CONFIG = SimulationConfig(
    seed=2015, scale=1.5e-6, weeks=4, min_project_files=4, stress_depths=False
)
SHARD_COUNT = 3
SHARD_ANALYSES = "census,growth"

#: Inline-reference digests + report, built once and reused every round.
_SHARD_BASELINE: dict = {}


def _digest_tree(directory: Path) -> dict:
    import hashlib

    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(directory.glob("*.rpq")) + sorted(directory.glob("*.rpd"))
    }


def soak_shard(archive: Path, workdir: Path, rng: random.Random,
               baseline: str) -> list[str]:
    """Supervised sharded run under fire — random worker SIGKILLs, one
    deterministic self-kill, one forced straggler — must converge to the
    exact bytes (and report) of the fault-free inline reference."""
    from repro.query.supervisor import SupervisorConfig
    from repro.synth.sharding import run_sharded
    from repro.testing.faults import kill_shard_worker, shard_kill, shard_stall

    errors: list[str] = []
    if not _SHARD_BASELINE:
        ref = workdir / "shard-ref"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            run_sharded(SHARD_CONFIG, SHARD_COUNT, ref, workers=0)
            _, report = analyze_archive(
                ref, config=SHARD_CONFIG, executor=SnapshotExecutor(1),
                analyses=SHARD_ANALYSES,
            )
        _SHARD_BASELINE["digest"] = _digest_tree(ref)
        _SHARD_BASELINE["report"] = report.text
    target = workdir / "shard-round"
    if target.exists():
        shutil.rmtree(target)
    # one worker kills itself mid-window, a different one stalls until the
    # per-attempt deadline reaps it
    victim = rng.randrange(SHARD_COUNT)
    straggler = (victim + 1 + rng.randrange(SHARD_COUNT - 1)) % SHARD_COUNT
    faults = [
        shard_kill(victim, after_weeks=1 + rng.randrange(2)),
        shard_stall(straggler, week=1, seconds=30.0),
    ]
    fault = f"self-kill shard {victim}, straggler shard {straggler}"
    # ...plus a best-effort sniper thread sending real SIGKILLs at whatever
    # workers happen to be alive (capped well under the attempt budget)
    kill_rng = random.Random(rng.randrange(2**32))
    stop = threading.Event()
    sniper = {"kills": 0}

    def arm(supervisor) -> None:
        def snipe() -> None:
            while not stop.is_set() and sniper["kills"] < 2:
                time.sleep(0.15 + kill_rng.random() * 0.2)
                if kill_shard_worker(supervisor, rng=kill_rng) is not None:
                    sniper["kills"] += 1

        threading.Thread(target=snipe, daemon=True).start()

    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = run_sharded(
                SHARD_CONFIG,
                SHARD_COUNT,
                target,
                supervisor=SupervisorConfig(
                    workers=2,
                    max_attempts=8,
                    backoff_seconds=0.05,
                    stall_timeout_seconds=0.3,
                    shard_max_seconds=3.0,
                    poll_seconds=0.02,
                ),
                faults=faults,
                on_supervisor=arm,
            )
    except Exception as exc:  # noqa: BLE001 - contract check
        stop.set()
        errors.append(f"{fault}: supervised run failed outright: {exc!r}")
        return errors
    finally:
        stop.set()
    if result.stats.completed != SHARD_COUNT:
        errors.append(
            f"{fault}: only {result.stats.completed}/{SHARD_COUNT} shards "
            "completed"
        )
    if result.stats.restarts < 1:
        errors.append(f"{fault}: no restart recorded despite injected kills")
    if result.degraded:
        errors.append(
            f"{fault}: run degraded despite an adequate attempt budget: "
            f"{[f.reason for f in result.health.faults]}"
        )
    if _digest_tree(target) != _SHARD_BASELINE["digest"]:
        errors.append(
            f"{fault}: merged archive differs from the inline baseline "
            f"(after {result.stats.restarts} restarts, "
            f"{sniper['kills']} sniper kills)"
        )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        _, report = analyze_archive(
            target, config=SHARD_CONFIG, executor=SnapshotExecutor(1),
            analyses=SHARD_ANALYSES,
        )
    if report.text != _SHARD_BASELINE["report"]:
        errors.append(f"{fault}: analysis over the merged archive differs")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    rng = random.Random(args.seed)
    failures: list[str] = []
    suites_run = 0
    rounds_done = 0

    # an interrupted soak must still report what it learned: the first
    # SIGINT requests a stop at the next suite boundary (the summary and
    # the TemporaryDirectory cleanup both still run); a second aborts hard
    interrupted = {"hit": False}

    def _on_sigint(signum, frame):
        if interrupted["hit"]:
            raise KeyboardInterrupt
        interrupted["hit"] = True
        print(
            "\nSIGINT — finishing the current suite, then summarizing "
            "(press Ctrl-C again to abort hard)",
            flush=True,
        )

    previous_sigint = signal.signal(signal.SIGINT, _on_sigint)
    try:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            tmp = Path(tmp)
            archive = tmp / "archive"
            t0 = time.time()
            print("building baseline archive...", flush=True)
            baseline = build_archive(archive)
            print(f"  {len(list(archive.glob('*.rpq')))} snapshots "
                  f"({time.time() - t0:.1f}s)")
            suites = [
                ("corruption", soak_corruption),
                ("resume", soak_resume),
                ("transient-io", soak_transient),
                ("deadline", soak_deadline),
                ("ingest", soak_ingest),
                ("serve", soak_serve),
                ("follow", soak_follow),
                ("shard", soak_shard),
            ]
            for round_no in range(1, args.rounds + 1):
                if interrupted["hit"]:
                    break
                for name, suite in suites:
                    if interrupted["hit"]:
                        break
                    t0 = time.time()
                    errs = suite(archive, tmp, rng, baseline)
                    suites_run += 1
                    status = "ok" if not errs else "FAIL"
                    print(f"round {round_no} {name:<12} {status} "
                          f"({time.time() - t0:.1f}s)", flush=True)
                    failures.extend(
                        f"round {round_no} [{name}] {e}" for e in errs
                    )
                else:
                    rounds_done += 1
    finally:
        signal.signal(signal.SIGINT, previous_sigint)
    if interrupted["hit"]:
        print(f"\ninterrupted after {rounds_done} full round(s), "
              f"{suites_run} suite run(s)")
    if failures:
        print(f"\n{len(failures)} contract violation(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    if interrupted["hit"]:
        print("no contract violations before the interrupt")
        return 130
    print("\nall chaos rounds passed: no silent wrong data, resume exact")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
